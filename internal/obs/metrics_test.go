package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1)
	g.Add(-0.5)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1 counts {0.5, 1}; le=2 adds 1.5; le=4 adds 3; +Inf adds 100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Errorf("sum = %v, want 106", s.Sum)
	}
	if math.Abs(h.Mean()-106.0/5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	for i, w := range []float64{1, 2, 4, 8} {
		if exp[i] != w {
			t.Errorf("exp[%d] = %v, want %v", i, exp[i], w)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	for i, w := range []float64{0, 0.5, 1} {
		if lin[i] != w {
			t.Errorf("lin[%d] = %v, want %v", i, lin[i], w)
		}
	}
	rb := RankBuckets(100)
	if rb[0] != 0 || rb[1] != 1 || rb[len(rb)-1] != 64 {
		t.Errorf("RankBuckets(100) = %v", rb)
	}
	// Must always be a valid (strictly increasing) layout.
	NewHistogram(rb)
	NewHistogram(RankBuckets(2))
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec("path", "code")
	v.With("/a", "200").Add(3)
	v.With("/a", "400").Inc()
	v.With("/b", "200").Inc()
	if got := v.With("/a", "200").Value(); got != 3 {
		t.Errorf("child = %d, want 3", got)
	}
	if got := v.Sum(); got != 5 {
		t.Errorf("sum = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch accepted")
		}
	}()
	v.With("/a")
}

func TestGaugeVec(t *testing.T) {
	v := NewGaugeVec("worker")
	v.With("0").Set(1.5)
	v.With("1").Set(-2)
	v.With("0").Add(0.5)
	if got := v.With("0").Value(); got != 2 {
		t.Errorf("worker 0 = %v, want 2", got)
	}
	if got := v.With("1").Value(); got != -2 {
		t.Errorf("worker 1 = %v, want -2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch accepted")
		}
	}()
	v.With("0", "1")
}

func TestGaugeVecExposition(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewGaugeVec("train_worker_steps_per_sec", "", "worker")
	v.With("1").Set(1000)
	v.With("0").Set(500)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := ParseExposition(t, sb.String())
	if samples[`train_worker_steps_per_sec{worker="0"}`] != 500 ||
		samples[`train_worker_steps_per_sec{worker="1"}`] != 1000 {
		t.Errorf("unexpected samples: %v", samples)
	}
}

func TestHistogramVecSharedLayout(t *testing.T) {
	v := NewHistogramVec([]float64{1, 10}, "path")
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(5)
	v.With("/b").Observe(50)
	if got := v.With("/a").Count(); got != 2 {
		t.Errorf("/a count = %d, want 2", got)
	}
	if got := v.With("/b").Count(); got != 1 {
		t.Errorf("/b count = %d, want 1", got)
	}
}

// TestConcurrentMetrics hammers every metric type from many goroutines;
// the race detector (make check runs go test -race) is the assertion.
func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "")
	g := reg.NewGauge("g", "")
	h := reg.NewHistogram("h", "", []float64{0.1, 1, 10})
	cv := reg.NewCounterVec("cv_total", "", "l")
	hv := reg.NewHistogramVec("hv", "", []float64{1, 2}, "l")

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := string(rune('a' + id%3))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
				cv.With(lbl).Inc()
				hv.With(lbl).Observe(float64(i % 3))
				if i%100 == 0 {
					_ = reg.WritePrometheus(discard{})
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if cv.Sum() != workers*perWorker {
		t.Errorf("vec sum = %d, want %d", cv.Sum(), workers*perWorker)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok") // no explicit WriteHeader: must still record 200
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	return mux
}

func TestMiddlewareRecords(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	h := m.Middleware(nil, testHandler())

	cases := []struct {
		path string
		n    int
		code string
	}{
		{"/ok", 3, "200"},
		{"/slow", 2, "202"},
		{"/fail", 1, "500"},
		{"/nope", 1, "404"},
	}
	for _, c := range cases {
		for i := 0; i < c.n; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", c.path, nil))
		}
	}

	for _, c := range cases {
		if got := m.Requests.With(c.path, c.code).Value(); got != uint64(c.n) {
			t.Errorf("requests{%s,%s} = %d, want %d", c.path, c.code, got, c.n)
		}
		if got := m.Latency.With(c.path).Count(); got != uint64(c.n) {
			t.Errorf("latency count{%s} = %d, want %d", c.path, got, c.n)
		}
	}
	if got := m.TotalRequests(); got != 7 {
		t.Errorf("total = %d, want 7", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Errorf("in-flight after drain = %v, want 0", got)
	}
	// /slow slept 2ms, so its latency histogram must have mass above the
	// first bucket boundary (100µs) — i.e. buckets are actually populated
	// with real durations, not zeros.
	if mean := m.Latency.With("/slow").Mean(); mean < 0.002 {
		t.Errorf("/slow mean latency = %v, want >= 2ms", mean)
	}
}

func TestMiddlewareNormalize(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	norm := func(p string) string {
		if p == "/ok" {
			return p
		}
		return "other"
	}
	h := m.Middleware(norm, testHandler())
	for _, p := range []string{"/ok", "/user/1", "/user/2", "/user/3"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", p, nil))
	}
	if got := m.Requests.With("/ok", "200").Value(); got != 1 {
		t.Errorf("/ok = %d, want 1", got)
	}
	if got := m.Requests.With("other", "404").Value(); got != 3 {
		t.Errorf("other = %d, want 3 (cardinality must stay bounded)", got)
	}
}

func TestMiddlewareExposition(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	h := m.Middleware(nil, testHandler())
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := ParseExposition(t, sb.String())
	if samples[`t_http_requests_total{path="/ok",code="200"}`] != 1 {
		t.Errorf("request counter missing from exposition:\n%s", sb.String())
	}
	if samples[`t_http_request_duration_seconds_count{path="/ok"}`] != 1 {
		t.Errorf("latency histogram missing from exposition:\n%s", sb.String())
	}
}

// TestMiddlewareConcurrent drives the middleware from many goroutines for
// the race detector.
func TestMiddlewareConcurrent(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	h := m.Middleware(nil, testHandler())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))
			}
		}()
	}
	wg.Wait()
	if got := m.Requests.With("/ok", "200").Value(); got != 1600 {
		t.Errorf("requests = %d, want 1600", got)
	}
}

package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok") // no explicit WriteHeader: must still record 200
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	return mux
}

func TestMiddlewareRecords(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	h := m.Middleware(nil, testHandler())

	cases := []struct {
		path string
		n    int
		code string
	}{
		{"/ok", 3, "200"},
		{"/slow", 2, "202"},
		{"/fail", 1, "500"},
		{"/nope", 1, "404"},
	}
	for _, c := range cases {
		for i := 0; i < c.n; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", c.path, nil))
		}
	}

	for _, c := range cases {
		if got := m.Requests.With(c.path, c.code).Value(); got != uint64(c.n) {
			t.Errorf("requests{%s,%s} = %d, want %d", c.path, c.code, got, c.n)
		}
		if got := m.Latency.With(c.path).Count(); got != uint64(c.n) {
			t.Errorf("latency count{%s} = %d, want %d", c.path, got, c.n)
		}
	}
	if got := m.TotalRequests(); got != 7 {
		t.Errorf("total = %d, want 7", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Errorf("in-flight after drain = %v, want 0", got)
	}
	// /slow slept 2ms, so its latency histogram must have mass above the
	// first bucket boundary (100µs) — i.e. buckets are actually populated
	// with real durations, not zeros.
	if mean := m.Latency.With("/slow").Mean(); mean < 0.002 {
		t.Errorf("/slow mean latency = %v, want >= 2ms", mean)
	}
}

func TestMiddlewareNormalize(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	norm := func(p string) string {
		if p == "/ok" {
			return p
		}
		return "other"
	}
	h := m.Middleware(norm, testHandler())
	for _, p := range []string{"/ok", "/user/1", "/user/2", "/user/3"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", p, nil))
	}
	if got := m.Requests.With("/ok", "200").Value(); got != 1 {
		t.Errorf("/ok = %d, want 1", got)
	}
	if got := m.Requests.With("other", "404").Value(); got != 3 {
		t.Errorf("other = %d, want 3 (cardinality must stay bounded)", got)
	}
}

func TestMiddlewareExposition(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	h := m.Middleware(nil, testHandler())
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := ParseExposition(t, sb.String())
	if samples[`t_http_requests_total{path="/ok",code="200"}`] != 1 {
		t.Errorf("request counter missing from exposition:\n%s", sb.String())
	}
	if samples[`t_http_request_duration_seconds_count{path="/ok"}`] != 1 {
		t.Errorf("latency histogram missing from exposition:\n%s", sb.String())
	}
}

// TestMiddlewareConcurrent drives the middleware from many goroutines for
// the race detector.
func TestMiddlewareConcurrent(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	h := m.Middleware(nil, testHandler())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))
			}
		}()
	}
	wg.Wait()
	if got := m.Requests.With("/ok", "200").Value(); got != 1600 {
		t.Errorf("requests = %d, want 1600", got)
	}
}

// flushRecorder wraps httptest.ResponseRecorder with a flush flag so the
// passthrough can be observed.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushed bool
}

func (f *flushRecorder) Flush() { f.flushed = true }

// readFromRecorder additionally implements io.ReaderFrom so the fast
// path can be observed.
type readFromRecorder struct {
	*httptest.ResponseRecorder
	readFromUsed bool
}

func (r *readFromRecorder) ReadFrom(src io.Reader) (int64, error) {
	r.readFromUsed = true
	return io.Copy(r.ResponseRecorder, src)
}

func TestStatusRecorderWriteBeforeWriteHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := NewStatusRecorder(rec)
	if _, err := sw.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := sw.Code(); got != http.StatusOK {
		t.Errorf("code after bare Write = %d, want 200", got)
	}
	// A WriteHeader after the implicit 200 must not retroactively change
	// the recorded code (first writer wins, matching net/http).
	sw.WriteHeader(http.StatusTeapot)
	if got := sw.Code(); got != http.StatusOK {
		t.Errorf("code changed retroactively to %d", got)
	}
	if got := sw.BytesWritten(); got != 5 {
		t.Errorf("bytes = %d, want 5", got)
	}
}

func TestStatusRecorderDefaultsAndFirstHeaderWins(t *testing.T) {
	sw := NewStatusRecorder(httptest.NewRecorder())
	if got := sw.Code(); got != http.StatusOK {
		t.Errorf("untouched code = %d, want 200", got)
	}
	sw.WriteHeader(http.StatusNotFound)
	sw.WriteHeader(http.StatusOK) // too late
	if got := sw.Code(); got != http.StatusNotFound {
		t.Errorf("code = %d, want first WriteHeader (404)", got)
	}
}

func TestStatusRecorderIdentityReuse(t *testing.T) {
	inner := NewStatusRecorder(httptest.NewRecorder())
	outer := NewStatusRecorder(inner)
	if outer != inner {
		t.Error("stacked NewStatusRecorder allocated a second recorder")
	}
}

func TestStatusRecorderFlushPassthrough(t *testing.T) {
	fr := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	sw := NewStatusRecorder(fr)
	// The wrapper itself must satisfy http.Flusher (the embedded writer
	// would otherwise shadow it behind the interface).
	var asWriter http.ResponseWriter = sw
	f, ok := asWriter.(http.Flusher)
	if !ok {
		t.Fatal("StatusRecorder does not implement http.Flusher")
	}
	f.Flush()
	if !fr.flushed {
		t.Error("Flush not forwarded to the underlying writer")
	}
	if got := sw.Code(); got != http.StatusOK {
		t.Errorf("code after Flush = %d, want implicit 200", got)
	}

	// Flush on a non-flushable writer is a safe no-op.
	NewStatusRecorder(nopWriter{httptest.NewRecorder()}).Flush()
}

// nopWriter hides ResponseRecorder's optional interfaces.
type nopWriter struct{ rw http.ResponseWriter }

func (n nopWriter) Header() http.Header         { return n.rw.Header() }
func (n nopWriter) Write(b []byte) (int, error) { return n.rw.Write(b) }
func (n nopWriter) WriteHeader(code int)        { n.rw.WriteHeader(code) }

func TestStatusRecorderReadFrom(t *testing.T) {
	// With an underlying io.ReaderFrom: fast path used, bytes counted.
	rf := &readFromRecorder{ResponseRecorder: httptest.NewRecorder()}
	sw := NewStatusRecorder(rf)
	n, err := sw.ReadFrom(strings.NewReader("0123456789"))
	if err != nil || n != 10 {
		t.Fatalf("ReadFrom = (%d, %v), want (10, nil)", n, err)
	}
	if !rf.readFromUsed {
		t.Error("underlying ReadFrom fast path not used")
	}
	if got := sw.BytesWritten(); got != 10 {
		t.Errorf("bytes = %d, want 10", got)
	}
	if got := sw.Code(); got != http.StatusOK {
		t.Errorf("code = %d, want implicit 200", got)
	}

	// Without: plain copy fallback, still counted.
	sw2 := NewStatusRecorder(nopWriter{httptest.NewRecorder()})
	n, err = sw2.ReadFrom(strings.NewReader("abc"))
	if err != nil || n != 3 || sw2.BytesWritten() != 3 {
		t.Errorf("fallback ReadFrom = (%d, %v), bytes %d; want (3, nil), 3", n, err, sw2.BytesWritten())
	}
}

func TestStatusRecorderUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := NewStatusRecorder(rec)
	if sw.Unwrap() != http.ResponseWriter(rec) {
		t.Error("Unwrap did not return the wrapped writer")
	}
	// http.ResponseController follows Unwrap to reach the flushable
	// writer — the standard-library contract the method exists for.
	if err := http.NewResponseController(sw).Flush(); err != nil {
		t.Errorf("ResponseController.Flush through Unwrap: %v", err)
	}
}

package eval

import "testing"

func TestRecallVsExact(t *testing.T) {
	cases := []struct {
		name          string
		approx, exact []int32
		want          float64
	}{
		{"identical", []int32{1, 2, 3}, []int32{3, 2, 1}, 1},
		{"disjoint", []int32{4, 5}, []int32{1, 2}, 0},
		{"partial", []int32{1, 9, 3, 8}, []int32{1, 2, 3, 4}, 0.5},
		{"short-approx", []int32{2}, []int32{1, 2}, 0.5},
		{"empty-exact", []int32{1, 2}, nil, 1},
		{"empty-approx", nil, []int32{1, 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := RecallVsExact(tc.approx, tc.exact); got != tc.want {
				t.Errorf("RecallVsExact(%v, %v) = %v, want %v", tc.approx, tc.exact, got, tc.want)
			}
		})
	}
}

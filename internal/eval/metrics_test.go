package eval

import (
	"testing"
	"testing/quick"

	"clapf/internal/mathx"
)

// listFrom builds a ListEval for a ranked list where relevant items are the
// given set.
func listFrom(ranked []int32, relevant []int32) *ListEval {
	rel := make(map[int32]bool, len(relevant))
	for _, r := range relevant {
		rel[r] = true
	}
	return NewListEval(ranked, func(i int32) bool { return rel[i] }, len(relevant))
}

func TestAtKHandExample(t *testing.T) {
	// Ranked: [5 2 8 1 9]; relevant: {2, 9, 7} (7 never appears).
	le := listFrom([]int32{5, 2, 8, 1, 9}, []int32{2, 9, 7})
	m := le.AtK(3)
	if !mathx.AlmostEqual(m.Prec, 1.0/3, 1e-12) {
		t.Errorf("Prec@3 = %v, want 1/3", m.Prec)
	}
	if !mathx.AlmostEqual(m.Recall, 1.0/3, 1e-12) {
		t.Errorf("Recall@3 = %v, want 1/3", m.Recall)
	}
	if !mathx.AlmostEqual(m.F1, 1.0/3, 1e-12) {
		t.Errorf("F1@3 = %v, want 1/3", m.F1)
	}
	if m.OneCall != 1 {
		t.Errorf("1-call@3 = %v, want 1", m.OneCall)
	}

	m5 := le.AtK(5)
	if !mathx.AlmostEqual(m5.Prec, 2.0/5, 1e-12) {
		t.Errorf("Prec@5 = %v, want 0.4", m5.Prec)
	}
	if !mathx.AlmostEqual(m5.Recall, 2.0/3, 1e-12) {
		t.Errorf("Recall@5 = %v, want 2/3", m5.Recall)
	}
}

func TestAtKNoHits(t *testing.T) {
	le := listFrom([]int32{1, 2, 3}, []int32{9})
	m := le.AtK(3)
	if m.Prec != 0 || m.Recall != 0 || m.F1 != 0 || m.OneCall != 0 || m.NDCG != 0 {
		t.Errorf("expected all-zero metrics, got %+v", m)
	}
}

func TestAtKPerfectRanking(t *testing.T) {
	// All 3 relevant items at the top: NDCG@5 = 1, Recall@5 = 1.
	le := listFrom([]int32{7, 8, 9, 1, 2}, []int32{7, 8, 9})
	m := le.AtK(5)
	if !mathx.AlmostEqual(m.NDCG, 1, 1e-12) {
		t.Errorf("NDCG@5 = %v, want 1 for perfect ranking", m.NDCG)
	}
	if !mathx.AlmostEqual(m.Recall, 1, 1e-12) {
		t.Errorf("Recall@5 = %v, want 1", m.Recall)
	}
	if !mathx.AlmostEqual(m.Prec, 3.0/5, 1e-12) {
		t.Errorf("Prec@5 = %v, want 0.6", m.Prec)
	}
}

func TestNDCGWorseWhenRelevantLower(t *testing.T) {
	top := listFrom([]int32{1, 2, 3, 4, 5}, []int32{1})
	bottom := listFrom([]int32{2, 3, 4, 5, 1}, []int32{1})
	if top.AtK(5).NDCG <= bottom.AtK(5).NDCG {
		t.Errorf("NDCG should prefer relevant item at top: %v vs %v",
			top.AtK(5).NDCG, bottom.AtK(5).NDCG)
	}
}

func TestAtKZeroOrNegativeK(t *testing.T) {
	le := listFrom([]int32{1}, []int32{1})
	if m := le.AtK(0); m.Prec != 0 || m.NDCG != 0 {
		t.Errorf("AtK(0) = %+v, want zeros", m)
	}
	if m := le.AtK(-3); m.Prec != 0 {
		t.Errorf("AtK(-3) nonzero")
	}
}

func TestAtKBeyondListLength(t *testing.T) {
	// k larger than the candidate list: hits are capped by the list but
	// precision divides by k.
	le := listFrom([]int32{1, 2}, []int32{1, 2})
	m := le.AtK(4)
	if !mathx.AlmostEqual(m.Prec, 0.5, 1e-12) {
		t.Errorf("Prec@4 = %v, want 0.5", m.Prec)
	}
	if !mathx.AlmostEqual(m.Recall, 1, 1e-12) {
		t.Errorf("Recall@4 = %v, want 1", m.Recall)
	}
}

func TestAPHandExample(t *testing.T) {
	// Ranked: positions 1..5, relevant at positions 1, 3, 5 (ids 10,30,50).
	le := listFrom([]int32{10, 20, 30, 40, 50}, []int32{10, 30, 50})
	// AP = (1/1 + 2/3 + 3/5) / 3.
	want := (1.0 + 2.0/3 + 3.0/5) / 3
	if got := le.AP(); !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("AP = %v, want %v", got, want)
	}
}

func TestAPPerfectIsOne(t *testing.T) {
	le := listFrom([]int32{1, 2, 3, 9, 8}, []int32{1, 2, 3})
	if got := le.AP(); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("AP = %v, want 1", got)
	}
}

func TestAPMissingRelevantPenalized(t *testing.T) {
	// One of two relevant items is absent from the candidate list: the
	// denominator still counts it.
	le := listFrom([]int32{1, 5, 6}, []int32{1, 99})
	if got := le.AP(); !mathx.AlmostEqual(got, 0.5, 1e-12) {
		t.Errorf("AP = %v, want 0.5", got)
	}
}

func TestAPNoRelevant(t *testing.T) {
	le := listFrom([]int32{1, 2}, nil)
	if got := le.AP(); got != 0 {
		t.Errorf("AP with no relevant = %v, want 0", got)
	}
}

func TestRR(t *testing.T) {
	cases := []struct {
		ranked   []int32
		relevant []int32
		want     float64
	}{
		{[]int32{9, 1, 2}, []int32{1}, 0.5},
		{[]int32{1, 2, 3}, []int32{1}, 1},
		{[]int32{5, 6, 7, 1}, []int32{1, 7}, 1.0 / 3},
		{[]int32{5, 6}, []int32{1}, 0},
	}
	for _, c := range cases {
		if got := listFrom(c.ranked, c.relevant).RR(); !mathx.AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("RR(%v rel %v) = %v, want %v", c.ranked, c.relevant, got, c.want)
		}
	}
}

func TestAUCHandExample(t *testing.T) {
	// Ranked [P N P N]: pairs (P1,N1) ok, (P1,N2) ok, (P2,N1) wrong,
	// (P2,N2) ok → 3/4.
	le := listFrom([]int32{1, 8, 2, 9}, []int32{1, 2})
	if got := le.AUC(); !mathx.AlmostEqual(got, 0.75, 1e-12) {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestAUCExtremes(t *testing.T) {
	perfect := listFrom([]int32{1, 2, 8, 9}, []int32{1, 2})
	if got := perfect.AUC(); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	worst := listFrom([]int32{8, 9, 1, 2}, []int32{1, 2})
	if got := worst.AUC(); got != 0 {
		t.Errorf("worst AUC = %v", got)
	}
	allRel := listFrom([]int32{1, 2}, []int32{1, 2})
	if got := allRel.AUC(); got != 0 {
		t.Errorf("degenerate AUC = %v, want 0", got)
	}
}

func TestAUCMatchesBruteForce(t *testing.T) {
	rng := mathx.NewRNG(1)
	f := func(pattern uint32, n uint8) bool {
		length := int(n%12) + 2
		ranked := make([]int32, length)
		var relevant []int32
		for i := range ranked {
			ranked[i] = int32(i)
			if pattern>>uint(i)&1 == 1 {
				relevant = append(relevant, int32(i))
			}
		}
		_ = rng
		le := listFrom(ranked, relevant)

		// Brute force over all (pos, neg) pairs.
		rel := make(map[int32]bool)
		for _, r := range relevant {
			rel[r] = true
		}
		var correct, total float64
		for pi, p := range ranked {
			if !rel[p] {
				continue
			}
			for ni, q := range ranked {
				if rel[q] {
					continue
				}
				total++
				if pi < ni {
					correct++
				}
			}
		}
		want := 0.0
		if total > 0 {
			want = correct / total
		}
		return mathx.AlmostEqual(le.AUC(), want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMetricsBounded(t *testing.T) {
	// All metrics live in [0, 1] for arbitrary relevance patterns.
	f := func(pattern uint32, n uint8, k uint8) bool {
		length := int(n%20) + 1
		kk := int(k%25) + 1
		ranked := make([]int32, length)
		var relevant []int32
		for i := range ranked {
			ranked[i] = int32(i)
			if pattern>>uint(i%32)&1 == 1 {
				relevant = append(relevant, int32(i))
			}
		}
		le := listFrom(ranked, relevant)
		m := le.AtK(kk)
		in01 := func(x float64) bool { return x >= 0 && x <= 1+1e-12 }
		return in01(m.Prec) && in01(m.Recall) && in01(m.F1) &&
			in01(m.OneCall) && in01(m.NDCG) && in01(le.AP()) &&
			in01(le.RR()) && in01(le.AUC())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package eval

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/obs"
)

// Scorer is the interface every recommender in the repository satisfies:
// fill out[i] with the predicted relevance of item i for user u. len(out)
// equals the item count.
type Scorer interface {
	ScoreAll(u int32, out []float64)
}

// BatchScorer is optionally implemented by scorers that can fill score
// rows for many users in one call — score.Engine's blocked kernel
// satisfies it. Evaluate detects the interface with a type assertion and
// scores users in chunks, which streams each tile of the item-factor
// matrix through cache once per chunk instead of once per user. The
// metrics are bit-identical to the ScoreAll path because the batch
// kernel performs the same per-(user, item) dot products; only Timing
// differs.
type BatchScorer interface {
	Scorer
	ScoreUsers(users []int32, out [][]float64)
}

// Options tunes the evaluation run.
type Options struct {
	// Ks are the cutoffs to report. Defaults to {3, 5, 10, 15, 20}, the
	// paper's Figure 2 sweep.
	Ks []int
	// MaxUsers, when positive, evaluates a uniform sample of at most this
	// many test users — the convergence traces of Figure 4 re-evaluate
	// every epoch and would otherwise dominate training time.
	MaxUsers int
	// RNG drives the user sampling; required when MaxUsers > 0.
	RNG *mathx.RNG
	// Workers, when > 1, ranks users on that many goroutines. Per-user
	// results are reduced sequentially in user order afterwards, so the
	// metrics are bit-identical for every worker count (only Timing
	// varies); Scorer.ScoreAll must be safe for concurrent calls, which
	// holds for mf.Model and every baseline in this repository.
	Workers int
}

// DefaultKs is the paper's top-k sweep.
var DefaultKs = []int{3, 5, 10, 15, 20}

// Result aggregates metrics over all evaluated users.
type Result struct {
	AtK    []KMetrics // one per requested cutoff, in Ks order
	MAP    float64
	MRR    float64
	AUC    float64
	Users  int // users with at least one test positive that were evaluated
	Timing Timing
}

// Timing breaks the evaluation wall-clock into its phases, accumulated
// across users: model scoring (ScoreAll), candidate ranking (building
// and sorting the unobserved-item list), and metric computation. Total
// covers the whole Evaluate call, including user selection. With
// Workers > 1 the phase fields are summed across goroutines and exceed
// Total when the speedup is real.
type Timing struct {
	Score   time.Duration
	Rank    time.Duration
	Metrics time.Duration
	Total   time.Duration
}

// String renders the phase breakdown for log lines and CLI summaries.
func (t Timing) String() string {
	return fmt.Sprintf("total %s (score %s, rank %s, metrics %s)",
		t.Total.Round(time.Millisecond), t.Score.Round(time.Millisecond),
		t.Rank.Round(time.Millisecond), t.Metrics.Round(time.Millisecond))
}

// At returns the KMetrics for cutoff k, or an error if k was not requested.
func (r Result) At(k int) (KMetrics, error) {
	for _, m := range r.AtK {
		if m.K == k {
			return m, nil
		}
	}
	return KMetrics{}, fmt.Errorf("eval: cutoff %d not in result", k)
}

// MustAt is At for cutoffs known to be present.
func (r Result) MustAt(k int) KMetrics {
	m, err := r.At(k)
	if err != nil {
		panic(err)
	}
	return m
}

// userRow is one user's finished contribution, computed independently
// (possibly concurrently) and folded into the Result sequentially.
type userRow struct {
	evaluated bool
	atK       []KMetrics // parallel to ks
	ap, rr    float64
	auc       float64
	timing    Timing
}

// evalScratch is one goroutine's reusable buffers.
type evalScratch struct {
	scores []float64
	cands  []int32
}

func newEvalScratch(numItems int) *evalScratch {
	return &evalScratch{
		scores: make([]float64, numItems),
		cands:  make([]int32, 0, numItems),
	}
}

// Evaluate runs the full-ranking protocol: each user with test positives
// has every training-unobserved item ranked by s, and per-user metrics are
// averaged. Training positives are excluded from the candidate set (they
// are not recommendable); test positives are the relevance labels.
//
// Per-user work is embarrassingly parallel, so Options.Workers fans it
// out; the reduction always walks users in id order, making the returned
// metrics independent of the worker count down to the last bit.
func Evaluate(s Scorer, train, test *dataset.Dataset, opts Options) Result {
	total := obs.StartSpan("eval")
	ks := opts.Ks
	if len(ks) == 0 {
		ks = DefaultKs
	}
	numItems := train.NumItems()
	users := testUsers(test, opts)

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(users) {
		workers = len(users)
	}

	rows := make([]userRow, len(users))
	bs, batched := s.(BatchScorer)
	switch {
	case batched:
		evalBatched(bs, train, test, users, ks, rows, workers, numItems)
	case workers <= 1:
		scratch := newEvalScratch(numItems)
		for idx, u := range users {
			rows[idx] = evalUser(s, train, test, u, ks, scratch)
		}
	default:
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := newEvalScratch(numItems)
				for {
					idx := int(atomic.AddInt64(&next, 1)) - 1
					if idx >= len(users) {
						return
					}
					rows[idx] = evalUser(s, train, test, users[idx], ks, scratch)
				}
			}()
		}
		wg.Wait()
	}

	// Sequential reduce in user order: the float additions happen in the
	// same sequence as a serial pass, for any worker count.
	sums := make([]KMetrics, len(ks))
	for i, k := range ks {
		sums[i].K = k
	}
	var timing Timing
	var mapSum, mrrSum, aucSum float64
	evaluated := 0
	for i := range rows {
		r := &rows[i]
		timing.Score += r.timing.Score
		timing.Rank += r.timing.Rank
		timing.Metrics += r.timing.Metrics
		if !r.evaluated {
			continue
		}
		for j := range ks {
			sums[j].Prec += r.atK[j].Prec
			sums[j].Recall += r.atK[j].Recall
			sums[j].F1 += r.atK[j].F1
			sums[j].OneCall += r.atK[j].OneCall
			sums[j].NDCG += r.atK[j].NDCG
		}
		mapSum += r.ap
		mrrSum += r.rr
		aucSum += r.auc
		evaluated++
	}

	res := Result{AtK: sums, Users: evaluated}
	timing.Total = total.End()
	res.Timing = timing
	if evaluated == 0 {
		return res
	}
	n := float64(evaluated)
	for i := range res.AtK {
		res.AtK[i].Prec /= n
		res.AtK[i].Recall /= n
		res.AtK[i].F1 /= n
		res.AtK[i].OneCall /= n
		res.AtK[i].NDCG /= n
	}
	res.MAP = mapSum / n
	res.MRR = mrrSum / n
	res.AUC = aucSum / n
	return res
}

// evalChunk is the number of users scored per BatchScorer call. Each row
// is numItems float64s, so a chunk costs evalChunk*numItems*8 bytes of
// scratch per worker — well under a megabyte at MovieLens scale.
const evalChunk = 32

// evalBatched fills rows via chunked batch scoring: workers claim whole
// chunks of users, score them in one BatchScorer call, then compute each
// user's metric row from the shared score block. Work claiming is by
// chunk index, so for a fixed user list every chunk has the same
// membership regardless of worker count — another ingredient of the
// bit-identical guarantee.
func evalBatched(bs BatchScorer, train, test *dataset.Dataset, users []int32, ks []int, rows []userRow, workers, numItems int) {
	numChunks := (len(users) + evalChunk - 1) / evalChunk
	if workers > numChunks {
		workers = numChunks
	}
	newRowBuf := func() [][]float64 {
		backing := make([]float64, evalChunk*numItems)
		buf := make([][]float64, evalChunk)
		for i := range buf {
			buf[i] = backing[i*numItems : (i+1)*numItems : (i+1)*numItems]
		}
		return buf
	}
	runChunk := func(c int, rowBuf [][]float64, sc *evalScratch) {
		lo := c * evalChunk
		hi := lo + evalChunk
		if hi > len(users) {
			hi = len(users)
		}
		chunk := users[lo:hi]
		sp := obs.StartSpan("eval.score")
		bs.ScoreUsers(chunk, rowBuf[:len(chunk)])
		per := sp.End() / time.Duration(len(chunk))
		for j, u := range chunk {
			sc.scores = rowBuf[j]
			rows[lo+j] = evalScored(train, test, u, ks, sc, per)
		}
	}
	if workers <= 1 {
		rowBuf, sc := newRowBuf(), newEvalScratch(numItems)
		for c := 0; c < numChunks; c++ {
			runChunk(c, rowBuf, sc)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rowBuf, sc := newRowBuf(), newEvalScratch(numItems)
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= numChunks {
					return
				}
				runChunk(c, rowBuf, sc)
			}
		}()
	}
	wg.Wait()
}

// evalUser scores one user with ScoreAll and computes their metric row.
func evalUser(s Scorer, train, test *dataset.Dataset, u int32, ks []int, sc *evalScratch) userRow {
	if len(test.Positives(u)) == 0 {
		return userRow{}
	}
	sp := obs.StartSpan("eval.score")
	s.ScoreAll(u, sc.scores)
	return evalScored(train, test, u, ks, sc, sp.End())
}

// evalScored ranks one user's candidates from the already-filled
// sc.scores and computes their metric row. scoreTime is the (possibly
// amortized) cost of producing those scores, carried into the row's
// timing breakdown.
func evalScored(train, test *dataset.Dataset, u int32, ks []int, sc *evalScratch, scoreTime time.Duration) userRow {
	var row userRow
	rel := test.Positives(u)
	if len(rel) == 0 {
		return row
	}
	row.timing.Score = scoreTime

	// Candidate set: all items unobserved in training.
	sp := obs.StartSpan("eval.rank")
	numItems := len(sc.scores)
	cands := sc.cands[:0]
	trainPos := train.Positives(u)
	tp := 0
	for i := int32(0); i < int32(numItems); i++ {
		for tp < len(trainPos) && trainPos[tp] < i {
			tp++
		}
		if tp < len(trainPos) && trainPos[tp] == i {
			continue
		}
		cands = append(cands, i)
	}
	scores := sc.scores
	sort.SliceStable(cands, func(a, b int) bool {
		ia, ib := cands[a], cands[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	sc.cands = cands
	row.timing.Rank = sp.End()

	sp = obs.StartSpan("eval.metrics")
	le := NewListEval(cands, func(i int32) bool { return test.IsPositive(u, i) }, len(rel))
	row.atK = make([]KMetrics, len(ks))
	for i, k := range ks {
		row.atK[i] = le.AtK(k)
	}
	row.ap = le.AP()
	row.rr = le.RR()
	row.auc = le.AUC()
	row.timing.Metrics = sp.End()
	row.evaluated = true
	return row
}

// testUsers returns the users to evaluate, applying the optional sampling
// cap deterministically.
func testUsers(test *dataset.Dataset, opts Options) []int32 {
	all := test.UsersWithAtLeast(1)
	if opts.MaxUsers <= 0 || len(all) <= opts.MaxUsers {
		return all
	}
	rng := opts.RNG
	if rng == nil {
		rng = mathx.NewRNG(0)
	}
	perm := rng.Perm(len(all))
	out := make([]int32, opts.MaxUsers)
	for i := range out {
		out[i] = all[perm[i]]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

package eval

import (
	"fmt"
	"sort"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/obs"
)

// Scorer is the interface every recommender in the repository satisfies:
// fill out[i] with the predicted relevance of item i for user u. len(out)
// equals the item count.
type Scorer interface {
	ScoreAll(u int32, out []float64)
}

// Options tunes the evaluation run.
type Options struct {
	// Ks are the cutoffs to report. Defaults to {3, 5, 10, 15, 20}, the
	// paper's Figure 2 sweep.
	Ks []int
	// MaxUsers, when positive, evaluates a uniform sample of at most this
	// many test users — the convergence traces of Figure 4 re-evaluate
	// every epoch and would otherwise dominate training time.
	MaxUsers int
	// RNG drives the user sampling; required when MaxUsers > 0.
	RNG *mathx.RNG
}

// DefaultKs is the paper's top-k sweep.
var DefaultKs = []int{3, 5, 10, 15, 20}

// Result aggregates metrics over all evaluated users.
type Result struct {
	AtK    []KMetrics // one per requested cutoff, in Ks order
	MAP    float64
	MRR    float64
	AUC    float64
	Users  int // users with at least one test positive that were evaluated
	Timing Timing
}

// Timing breaks the evaluation wall-clock into its phases, accumulated
// across users: model scoring (ScoreAll), candidate ranking (building
// and sorting the unobserved-item list), and metric computation. Total
// covers the whole Evaluate call, including user selection.
type Timing struct {
	Score   time.Duration
	Rank    time.Duration
	Metrics time.Duration
	Total   time.Duration
}

// String renders the phase breakdown for log lines and CLI summaries.
func (t Timing) String() string {
	return fmt.Sprintf("total %s (score %s, rank %s, metrics %s)",
		t.Total.Round(time.Millisecond), t.Score.Round(time.Millisecond),
		t.Rank.Round(time.Millisecond), t.Metrics.Round(time.Millisecond))
}

// At returns the KMetrics for cutoff k, or an error if k was not requested.
func (r Result) At(k int) (KMetrics, error) {
	for _, m := range r.AtK {
		if m.K == k {
			return m, nil
		}
	}
	return KMetrics{}, fmt.Errorf("eval: cutoff %d not in result", k)
}

// MustAt is At for cutoffs known to be present.
func (r Result) MustAt(k int) KMetrics {
	m, err := r.At(k)
	if err != nil {
		panic(err)
	}
	return m
}

// Evaluate runs the full-ranking protocol: each user with test positives
// has every training-unobserved item ranked by s, and per-user metrics are
// averaged. Training positives are excluded from the candidate set (they
// are not recommendable); test positives are the relevance labels.
func Evaluate(s Scorer, train, test *dataset.Dataset, opts Options) Result {
	total := obs.StartSpan("eval")
	var timing Timing
	ks := opts.Ks
	if len(ks) == 0 {
		ks = DefaultKs
	}
	numItems := train.NumItems()
	users := testUsers(test, opts)

	scores := make([]float64, numItems)
	cands := make([]int32, 0, numItems)

	sums := make([]KMetrics, len(ks))
	for i, k := range ks {
		sums[i].K = k
	}
	var mapSum, mrrSum, aucSum float64
	evaluated := 0

	for _, u := range users {
		rel := test.Positives(u)
		if len(rel) == 0 {
			continue
		}
		sp := obs.StartSpan("eval.score")
		s.ScoreAll(u, scores)
		timing.Score += sp.End()

		// Candidate set: all items unobserved in training.
		sp = obs.StartSpan("eval.rank")
		cands = cands[:0]
		trainPos := train.Positives(u)
		tp := 0
		for i := int32(0); i < int32(numItems); i++ {
			for tp < len(trainPos) && trainPos[tp] < i {
				tp++
			}
			if tp < len(trainPos) && trainPos[tp] == i {
				continue
			}
			cands = append(cands, i)
		}
		sort.SliceStable(cands, func(a, b int) bool {
			ia, ib := cands[a], cands[b]
			if scores[ia] != scores[ib] {
				return scores[ia] > scores[ib]
			}
			return ia < ib
		})
		timing.Rank += sp.End()

		sp = obs.StartSpan("eval.metrics")
		le := NewListEval(cands, func(i int32) bool { return test.IsPositive(u, i) }, len(rel))
		for i, k := range ks {
			m := le.AtK(k)
			sums[i].Prec += m.Prec
			sums[i].Recall += m.Recall
			sums[i].F1 += m.F1
			sums[i].OneCall += m.OneCall
			sums[i].NDCG += m.NDCG
		}
		mapSum += le.AP()
		mrrSum += le.RR()
		aucSum += le.AUC()
		timing.Metrics += sp.End()
		evaluated++
	}

	res := Result{AtK: sums, Users: evaluated}
	timing.Total = total.End()
	res.Timing = timing
	if evaluated == 0 {
		return res
	}
	n := float64(evaluated)
	for i := range res.AtK {
		res.AtK[i].Prec /= n
		res.AtK[i].Recall /= n
		res.AtK[i].F1 /= n
		res.AtK[i].OneCall /= n
		res.AtK[i].NDCG /= n
	}
	res.MAP = mapSum / n
	res.MRR = mrrSum / n
	res.AUC = aucSum / n
	return res
}

// testUsers returns the users to evaluate, applying the optional sampling
// cap deterministically.
func testUsers(test *dataset.Dataset, opts Options) []int32 {
	all := test.UsersWithAtLeast(1)
	if opts.MaxUsers <= 0 || len(all) <= opts.MaxUsers {
		return all
	}
	rng := opts.RNG
	if rng == nil {
		rng = mathx.NewRNG(0)
	}
	perm := rng.Perm(len(all))
	out := make([]int32, opts.MaxUsers)
	for i := range out {
		out[i] = all[perm[i]]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

package eval

import (
	"fmt"
	"sort"

	"clapf/internal/dataset"
	"clapf/internal/rank"
)

// Popularity-stratified evaluation: long-tail corpora hide *where* a
// recommender earns its metrics — a model can look strong while only ever
// re-ranking the head. BucketEvaluate splits the catalog into popularity
// bands by training-set interaction counts and reports recall separately
// per band, the standard diagnostic for popularity bias.

// Bucket names a popularity band.
type Bucket int

const (
	// Head is the most-popular band (top HeadFrac of interactions).
	Head Bucket = iota
	// Mid is the middle band.
	Mid
	// Tail is the least-popular band.
	Tail
	numBuckets
)

// String returns the band's display name.
func (b Bucket) String() string {
	switch b {
	case Head:
		return "head"
	case Mid:
		return "mid"
	case Tail:
		return "tail"
	default:
		return fmt.Sprintf("Bucket(%d)", int(b))
	}
}

// BucketResult reports, per popularity band, how many test positives fall
// in the band and what fraction of them were recovered in the top-k.
type BucketResult struct {
	K int
	// Positives[b] counts test positives whose item lies in band b.
	Positives [numBuckets]int
	// Recovered[b] counts those found within the evaluated users' top-k.
	Recovered [numBuckets]int
}

// Recall returns Recovered/Positives for the band (0 when empty).
func (r BucketResult) Recall(b Bucket) float64 {
	if r.Positives[b] == 0 {
		return 0
	}
	return float64(r.Recovered[b]) / float64(r.Positives[b])
}

// ItemBuckets assigns every item a popularity band from training counts:
// items are ranked by popularity, and the band boundaries are drawn where
// cumulative interaction mass crosses headFrac and headFrac+midFrac —
// so "head" is the few items that absorb the first headFrac of all
// interactions, matching the long-tail framing.
func ItemBuckets(train *dataset.Dataset, headFrac, midFrac float64) ([]Bucket, error) {
	if headFrac <= 0 || midFrac <= 0 || headFrac+midFrac >= 1 {
		return nil, fmt.Errorf("eval: bucket fractions (%v, %v) must be positive and sum below 1", headFrac, midFrac)
	}
	pop := train.ItemPopularity()
	order := make([]int32, len(pop))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if pop[ia] != pop[ib] {
			return pop[ia] > pop[ib]
		}
		return ia < ib
	})
	total := 0
	for _, c := range pop {
		total += c
	}
	buckets := make([]Bucket, len(pop))
	cum := 0
	for _, it := range order {
		frac := 0.0
		if total > 0 {
			frac = float64(cum) / float64(total)
		}
		switch {
		case frac < headFrac:
			buckets[it] = Head
		case frac < headFrac+midFrac:
			buckets[it] = Mid
		default:
			buckets[it] = Tail
		}
		cum += pop[it]
	}
	return buckets, nil
}

// BucketEvaluate runs the full-ranking protocol and attributes each
// recovered test positive to its popularity band.
func BucketEvaluate(s Scorer, train, test *dataset.Dataset, k int, headFrac, midFrac float64, opts Options) (BucketResult, error) {
	if k <= 0 {
		return BucketResult{}, fmt.Errorf("eval: k = %d, want > 0", k)
	}
	buckets, err := ItemBuckets(train, headFrac, midFrac)
	if err != nil {
		return BucketResult{}, err
	}
	res := BucketResult{K: k}
	numItems := train.NumItems()
	scores := make([]float64, numItems)

	for _, u := range testUsers(test, opts) {
		rel := test.Positives(u)
		if len(rel) == 0 {
			continue
		}
		s.ScoreAll(u, scores)
		top := topKExcludingTrain(scores, k, train, u)
		inTop := make(map[int32]bool, len(top))
		for _, it := range top {
			inTop[it] = true
		}
		for _, it := range rel {
			b := buckets[it]
			res.Positives[b]++
			if inTop[it] {
				res.Recovered[b]++
			}
		}
	}
	return res, nil
}

// topKExcludingTrain returns the top-k unobserved item ids for u.
func topKExcludingTrain(scores []float64, k int, train *dataset.Dataset, u int32) []int32 {
	top := rank.TopK(scores, k, func(i int32) bool { return train.IsPositive(u, i) })
	out := make([]int32, len(top))
	for i, e := range top {
		out[i] = e.Item
	}
	return out
}

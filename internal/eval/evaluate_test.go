package eval

import (
	"reflect"
	"strings"
	"testing"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/score"
)

// oracleScorer scores exactly the test positives highest.
type oracleScorer struct{ test *dataset.Dataset }

func (o oracleScorer) ScoreAll(u int32, out []float64) {
	for i := range out {
		if o.test.IsPositive(u, int32(i)) {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}

// randomScorer returns seeded pseudo-random scores, fresh per call.
type randomScorer struct{ seed uint64 }

func (r randomScorer) ScoreAll(u int32, out []float64) {
	rng := mathx.NewRNG(r.seed + uint64(u))
	for i := range out {
		out[i] = rng.Float64()
	}
}

func buildSplit(t *testing.T) (train, test *dataset.Dataset) {
	t.Helper()
	var pairs []dataset.Interaction
	rng := mathx.NewRNG(77)
	const nu, ni = 40, 60
	for u := int32(0); u < nu; u++ {
		for c := 0; c < 12; c++ {
			pairs = append(pairs, dataset.Interaction{User: u, Item: int32(rng.Intn(ni))})
		}
	}
	d, err := dataset.FromInteractions("ev", nu, ni, pairs)
	if err != nil {
		t.Fatal(err)
	}
	train, test = dataset.Split(d, mathx.NewRNG(5), 0.5)
	return
}

func TestEvaluateOraclePerfect(t *testing.T) {
	train, test := buildSplit(t)
	res := Evaluate(oracleScorer{test}, train, test, Options{Ks: []int{5}})
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if !mathx.AlmostEqual(res.MAP, 1, 1e-9) {
		t.Errorf("oracle MAP = %v, want 1", res.MAP)
	}
	if !mathx.AlmostEqual(res.MRR, 1, 1e-9) {
		t.Errorf("oracle MRR = %v, want 1", res.MRR)
	}
	if !mathx.AlmostEqual(res.AUC, 1, 1e-9) {
		t.Errorf("oracle AUC = %v, want 1", res.AUC)
	}
	m := res.MustAt(5)
	if m.NDCG < 0.999 {
		t.Errorf("oracle NDCG@5 = %v, want 1", m.NDCG)
	}
	if m.OneCall < 0.999 {
		t.Errorf("oracle 1-call@5 = %v, want 1", m.OneCall)
	}
}

func TestEvaluateRandomNearHalfAUC(t *testing.T) {
	train, test := buildSplit(t)
	res := Evaluate(randomScorer{seed: 3}, train, test, Options{Ks: []int{5}})
	if res.AUC < 0.4 || res.AUC > 0.6 {
		t.Errorf("random AUC = %v, want ≈ 0.5", res.AUC)
	}
	if res.MAP >= 0.5 {
		t.Errorf("random MAP = %v, suspiciously high", res.MAP)
	}
}

func TestEvaluateOracleBeatsRandom(t *testing.T) {
	train, test := buildSplit(t)
	oracle := Evaluate(oracleScorer{test}, train, test, Options{Ks: []int{5}})
	random := Evaluate(randomScorer{seed: 9}, train, test, Options{Ks: []int{5}})
	if oracle.MustAt(5).Recall <= random.MustAt(5).Recall {
		t.Error("oracle should beat random on Recall@5")
	}
	if oracle.MAP <= random.MAP {
		t.Error("oracle should beat random on MAP")
	}
}

func TestEvaluateExcludesTrainingPositives(t *testing.T) {
	// A scorer that puts training positives on top would score zero if they
	// were not excluded; with exclusion the test positives surface.
	train, err := dataset.FromInteractions("t", 1, 6, []dataset.Interaction{{User: 0, Item: 0}, {User: 0, Item: 1}})
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.FromInteractions("t", 1, 6, []dataset.Interaction{{User: 0, Item: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Scores: train positives highest, then the test positive.
	s := scorerFunc(func(u int32, out []float64) {
		copy(out, []float64{10, 9, 8, 1, 1, 1})
	})
	res := Evaluate(s, train, test, Options{Ks: []int{1}})
	if got := res.MustAt(1).Prec; !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("Prec@1 = %v, want 1 — training items must not occupy slots", got)
	}
	if !mathx.AlmostEqual(res.MRR, 1, 1e-12) {
		t.Errorf("MRR = %v, want 1", res.MRR)
	}
}

type scorerFunc func(u int32, out []float64)

func (f scorerFunc) ScoreAll(u int32, out []float64) { f(u, out) }

func TestEvaluateDefaultKs(t *testing.T) {
	train, test := buildSplit(t)
	res := Evaluate(oracleScorer{test}, train, test, Options{})
	if len(res.AtK) != len(DefaultKs) {
		t.Fatalf("got %d cutoffs, want %d", len(res.AtK), len(DefaultKs))
	}
	for i, k := range DefaultKs {
		if res.AtK[i].K != k {
			t.Errorf("cutoff[%d] = %d, want %d", i, res.AtK[i].K, k)
		}
	}
	if _, err := res.At(999); err == nil {
		t.Error("At(999) should error")
	}
}

func TestEvaluateMaxUsersSampling(t *testing.T) {
	train, test := buildSplit(t)
	opts := Options{Ks: []int{5}, MaxUsers: 10, RNG: mathx.NewRNG(4)}
	res := Evaluate(oracleScorer{test}, train, test, opts)
	if res.Users > 10 {
		t.Errorf("evaluated %d users, cap was 10", res.Users)
	}
	// Deterministic under the same seed.
	res2 := Evaluate(oracleScorer{test}, train, test, Options{Ks: []int{5}, MaxUsers: 10, RNG: mathx.NewRNG(4)})
	if res.MustAt(5).Recall != res2.MustAt(5).Recall {
		t.Error("sampled evaluation not deterministic under same seed")
	}
}

func TestEvaluateEmptyTest(t *testing.T) {
	train, _ := buildSplit(t)
	empty, err := dataset.FromInteractions("e", train.NumUsers(), train.NumItems(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(oracleScorer{empty}, train, empty, Options{Ks: []int{5}})
	if res.Users != 0 || res.MAP != 0 {
		t.Errorf("empty test set: %+v", res)
	}
}

func TestEvaluateRecallMonotoneInK(t *testing.T) {
	train, test := buildSplit(t)
	res := Evaluate(randomScorer{seed: 1}, train, test, Options{})
	for i := 1; i < len(res.AtK); i++ {
		if res.AtK[i].Recall+1e-12 < res.AtK[i-1].Recall {
			t.Errorf("Recall not monotone in k: %v", res.AtK)
		}
		if res.AtK[i].OneCall+1e-12 < res.AtK[i-1].OneCall {
			t.Errorf("1-call not monotone in k: %v", res.AtK)
		}
	}
}

func TestEvaluateTiming(t *testing.T) {
	train, test := buildSplit(t)
	res := Evaluate(oracleScorer{test}, train, test, Options{Ks: []int{5}})
	tm := res.Timing
	if tm.Total <= 0 {
		t.Fatalf("total = %v, want > 0", tm.Total)
	}
	if tm.Score <= 0 || tm.Rank <= 0 || tm.Metrics <= 0 {
		t.Errorf("phases not all measured: %+v", tm)
	}
	if sum := tm.Score + tm.Rank + tm.Metrics; sum > tm.Total {
		t.Errorf("phases (%v) exceed total (%v)", sum, tm.Total)
	}
	if s := tm.String(); !strings.Contains(s, "score") || !strings.Contains(s, "rank") || !strings.Contains(s, "metrics") {
		t.Errorf("Timing.String() = %q", s)
	}
}

// TestEvaluateParallelBitIdentical is the determinism contract for
// Options.Workers: per-user rows are reduced sequentially in user order,
// so every worker count must produce the exact same Result — not merely
// close, but identical down to the last float bit (Timing excluded; it
// genuinely differs).
func TestEvaluateParallelBitIdentical(t *testing.T) {
	train, test := buildSplit(t)
	for _, scorer := range []Scorer{oracleScorer{test}, randomScorer{seed: 31}} {
		base := Evaluate(scorer, train, test, Options{})
		base.Timing = Timing{}
		for _, workers := range []int{1, 2, 3, 4, 7, 64} {
			got := Evaluate(scorer, train, test, Options{Workers: workers})
			got.Timing = Timing{}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d diverges from serial:\n got  %+v\n want %+v",
					workers, got, base)
			}
		}
	}
}

// TestEvaluateBatchScorerBitIdentical pins down the chunked fast path:
// evaluating through score.Engine (which implements BatchScorer) must
// produce the exact same Result as evaluating the model directly through
// ScoreAll — for the serial path and every worker count. If the blocked
// kernel or the chunked claiming reordered a single float operation,
// this would catch it.
func TestEvaluateBatchScorerBitIdentical(t *testing.T) {
	train, test := buildSplit(t)
	m := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(),
		Dim: 6, UseBias: true, InitStd: 0.1,
	})
	m.InitGaussian(mathx.NewRNG(9), 0.1)

	base := Evaluate(m, train, test, Options{})
	base.Timing = Timing{}
	for _, workers := range []int{1, 2, 4, 64} {
		got := Evaluate(score.NewEngine(m), train, test, Options{Workers: workers})
		got.Timing = Timing{}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("engine eval (workers=%d) diverges from direct model eval:\n got  %+v\n want %+v",
				workers, got, base)
		}
	}
}

// TestEvaluateParallelWithSampling checks that the MaxUsers cap and the
// worker fan-out compose: the sampled user set is chosen before the
// fan-out, so results stay worker-count independent.
func TestEvaluateParallelWithSampling(t *testing.T) {
	train, test := buildSplit(t)
	mk := func(workers int) Result {
		r := Evaluate(oracleScorer{test}, train, test,
			Options{Ks: []int{5}, MaxUsers: 10, RNG: mathx.NewRNG(4), Workers: workers})
		r.Timing = Timing{}
		return r
	}
	if a, b := mk(1), mk(5); !reflect.DeepEqual(a, b) {
		t.Errorf("sampled eval differs across worker counts:\n %+v\n %+v", a, b)
	}
}

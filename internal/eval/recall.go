package eval

// RecallVsExact measures an approximate retriever against the exact
// top-K for the same query: |approx ∩ exact| / |exact|. This is the
// standard ANN quality metric — it compares the approximate list to the
// ground truth *ranking* rather than to held-out relevance, so a perfect
// index scores 1 even on a badly trained model. An empty exact list (a
// degenerate query with nothing retrievable) counts as fully recalled.
func RecallVsExact(approx, exact []int32) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int32]bool, len(exact))
	for _, id := range exact {
		in[id] = true
	}
	hits := 0
	for _, id := range approx {
		if in[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

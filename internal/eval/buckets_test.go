package eval

import (
	"testing"

	"clapf/internal/dataset"
)

func TestItemBucketsByMass(t *testing.T) {
	// Item 0 takes half the interactions, items 1-2 most of the rest,
	// items 3+ the crumbs.
	var pairs []dataset.Interaction
	for u := int32(0); u < 10; u++ {
		pairs = append(pairs, dataset.Interaction{User: u, Item: 0})
	}
	for u := int32(0); u < 4; u++ {
		pairs = append(pairs, dataset.Interaction{User: u, Item: 1})
		pairs = append(pairs, dataset.Interaction{User: u, Item: 2})
	}
	pairs = append(pairs, dataset.Interaction{User: 0, Item: 3}, dataset.Interaction{User: 1, Item: 4})
	d, err := dataset.FromInteractions("b", 10, 6, pairs)
	if err != nil {
		t.Fatal(err)
	}
	buckets, err := ItemBuckets(d, 0.4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if buckets[0] != Head {
		t.Errorf("most popular item in %v, want head", buckets[0])
	}
	if buckets[3] != Tail || buckets[4] != Tail || buckets[5] != Tail {
		t.Errorf("crumb items not in tail: %v %v %v", buckets[3], buckets[4], buckets[5])
	}
	if Head.String() != "head" || Mid.String() != "mid" || Tail.String() != "tail" {
		t.Error("bucket names wrong")
	}
}

func TestItemBucketsValidation(t *testing.T) {
	d, _ := dataset.FromInteractions("v", 1, 2, []dataset.Interaction{{User: 0, Item: 0}})
	for _, fr := range [][2]float64{{0, 0.4}, {0.4, 0}, {0.6, 0.5}} {
		if _, err := ItemBuckets(d, fr[0], fr[1]); err == nil {
			t.Errorf("fractions %v accepted", fr)
		}
	}
}

func TestBucketEvaluateOracle(t *testing.T) {
	train, test := buildSplit(t)
	res, err := BucketEvaluate(oracleScorer{test}, train, test, 1000, 0.3, 0.4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With k covering the whole catalog, the oracle recovers everything in
	// every band.
	totalPos := 0
	for b := Head; b <= Tail; b++ {
		totalPos += res.Positives[b]
		if res.Positives[b] > 0 && res.Recall(b) < 0.999 {
			t.Errorf("oracle recall in %v = %.3f, want 1", b, res.Recall(b))
		}
	}
	if totalPos != test.NumPairs() {
		t.Errorf("attributed %d positives, test has %d", totalPos, test.NumPairs())
	}
}

func TestBucketEvaluatePopularityBias(t *testing.T) {
	// A popularity scorer should recover head positives far better than
	// tail positives at small k — the diagnostic this exists for.
	train, test := buildSplit(t)
	pop := train.ItemPopularity()
	s := scorerFunc(func(u int32, out []float64) {
		for i := range out {
			out[i] = float64(pop[i])
		}
	})
	res, err := BucketEvaluate(s, train, test, 5, 0.3, 0.4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Positives[Head] == 0 || res.Positives[Tail] == 0 {
		t.Skip("degenerate split for bucketing")
	}
	if res.Recall(Head) <= res.Recall(Tail) {
		t.Errorf("popularity scorer: head recall %.3f <= tail %.3f", res.Recall(Head), res.Recall(Tail))
	}
}

func TestBucketEvaluateErrors(t *testing.T) {
	train, test := buildSplit(t)
	if _, err := BucketEvaluate(oracleScorer{test}, train, test, 0, 0.3, 0.4, Options{}); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := BucketEvaluate(oracleScorer{test}, train, test, 5, 0, 0.4, Options{}); err == nil {
		t.Error("bad fractions accepted")
	}
}

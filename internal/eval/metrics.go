// Package eval implements the paper's evaluation protocol (§6.2–6.3): for
// every test user, rank *all* items unobserved in training by predicted
// score, then measure Precision@k, Recall@k, F1@k, 1-call@k, NDCG@k, AP
// (averaged to MAP), RR (averaged to MRR), and AUC against the held-out
// test positives. Unlike the sampled protocol of some neural-CF papers, no
// candidate subsampling is done — §6.3 is explicit about ranking the full
// unobserved set.
package eval

import "math"

// KMetrics bundles the top-k measures at a single cutoff.
type KMetrics struct {
	K       int
	Prec    float64
	Recall  float64
	F1      float64
	OneCall float64
	NDCG    float64
}

// ListEval measures one user's ranked recommendation list against the
// relevance oracle. ranked must be in descending predicted-score order and
// must already exclude training positives; isRel marks test positives;
// numRel is the total number of test positives for the user (which may
// exceed the number present in ranked when the list is truncated — pass the
// full list for exact MAP/AUC).
type ListEval struct {
	ranked  []bool // relevance flag per position
	numRel  int
	numCand int
}

// NewListEval precomputes per-position relevance for the ranked candidate
// list.
func NewListEval(ranked []int32, isRel func(int32) bool, numRel int) *ListEval {
	flags := make([]bool, len(ranked))
	for p, it := range ranked {
		flags[p] = isRel(it)
	}
	return &ListEval{ranked: flags, numRel: numRel, numCand: len(ranked)}
}

// AtK returns the cutoff measures at k.
func (l *ListEval) AtK(k int) KMetrics {
	if k <= 0 {
		return KMetrics{K: k}
	}
	lim := k
	if lim > len(l.ranked) {
		lim = len(l.ranked)
	}
	hits := 0
	dcg := 0.0
	for p := 0; p < lim; p++ {
		if l.ranked[p] {
			hits++
			dcg += 1 / math.Log2(float64(p)+2)
		}
	}
	m := KMetrics{K: k}
	m.Prec = float64(hits) / float64(k)
	if l.numRel > 0 {
		m.Recall = float64(hits) / float64(l.numRel)
	}
	if m.Prec+m.Recall > 0 {
		m.F1 = 2 * m.Prec * m.Recall / (m.Prec + m.Recall)
	}
	if hits > 0 {
		m.OneCall = 1
	}
	// Ideal DCG places min(numRel, k) relevant items at the top.
	ideal := l.numRel
	if ideal > k {
		ideal = k
	}
	var idcg float64
	for p := 0; p < ideal; p++ {
		idcg += 1 / math.Log2(float64(p)+2)
	}
	if idcg > 0 {
		m.NDCG = dcg / idcg
	}
	return m
}

// AP returns average precision over the full candidate list: the mean, over
// relevant items, of precision at each relevant item's position (Eq. 8's
// exact, unsmoothed form). Relevant items missing from the candidate list
// contribute zero.
func (l *ListEval) AP() float64 {
	if l.numRel == 0 {
		return 0
	}
	hits := 0
	var sum float64
	for p, rel := range l.ranked {
		if rel {
			hits++
			sum += float64(hits) / float64(p+1)
		}
	}
	return sum / float64(l.numRel)
}

// RR returns the reciprocal rank of the first relevant item (Eq. 5's exact
// form), or 0 when none is present.
func (l *ListEval) RR() float64 {
	for p, rel := range l.ranked {
		if rel {
			return 1 / float64(p+1)
		}
	}
	return 0
}

// AUC returns the exact pairwise AUC of Eq. 1: the fraction of
// (relevant, irrelevant) candidate pairs the ranking orders correctly.
// Users with no relevant or no irrelevant candidates yield 0.
func (l *ListEval) AUC() float64 {
	numPos := 0
	for _, rel := range l.ranked {
		if rel {
			numPos++
		}
	}
	numNeg := l.numCand - numPos
	if numPos == 0 || numNeg == 0 {
		return 0
	}
	// Walking in rank order: a relevant item at position p with r relevant
	// items above it has (p − r) irrelevant items above it, i.e. it beats
	// numNeg − (p − r) of the irrelevant items.
	var correct float64
	seen := 0
	for p, rel := range l.ranked {
		if rel {
			correct += float64(numNeg - (p - seen))
			seen++
		}
	}
	return correct / (float64(numPos) * float64(numNeg))
}

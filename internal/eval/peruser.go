package eval

import "clapf/internal/dataset"

// PerUserAtK runs the same full-ranking protocol as Evaluate but returns
// the raw per-user Prec@k and NDCG@k samples instead of their means. The
// slices are parallel and ordered by user id, so calling this with two
// scorers over the same splits yields matched observation pairs — the
// input a significance test (mathx.WelchTTest) needs to decide whether a
// quantized or approximate scorer is distinguishable from the reference,
// rather than comparing two already-averaged scalars. Users without test
// positives contribute no sample, exactly as Evaluate skips them.
func PerUserAtK(s Scorer, train, test *dataset.Dataset, k int) (prec, ndcg []float64) {
	users := test.UsersWithAtLeast(1)
	scratch := newEvalScratch(train.NumItems())
	ks := []int{k}
	for _, u := range users {
		row := evalUser(s, train, test, u, ks, scratch)
		if !row.evaluated {
			continue
		}
		prec = append(prec, row.atK[0].Prec)
		ndcg = append(ndcg, row.atK[0].NDCG)
	}
	return prec, ndcg
}

package guard

import (
	"fmt"
	"log/slog"
	"strings"

	"clapf/internal/mf"
	"clapf/internal/store"
)

// Trainee is the trainer surface the supervisor drives. Both core.Trainer
// and core.ParallelTrainer satisfy it. All methods are called between
// RunSteps calls, when the trainer is quiescent.
type Trainee interface {
	RunSteps(n int)
	StepsDone() int
	Model() *mf.Model
	// GuardTrip returns the pending trip, or nil while healthy.
	GuardTrip() *Trip
	// ClearGuardTrip re-arms the guard after a rollback.
	ClearGuardTrip()
	// ScaleLearnRate multiplies the learning rate by factor and returns
	// the new rate. The scaling survives rollbacks: restored state covers
	// the optimization trajectory, not the hyper-parameters.
	ScaleLearnRate(factor float64) float64
	// RestoreFromMeta rewinds the trainer to a checkpoint (parameters
	// from m, schedule/RNG/loss state from meta).
	RestoreFromMeta(m *mf.Model, meta *store.Meta) error
}

// Supervisor recovers a tripped trainee from its checkpoint directory:
// roll back to the newest good generation, multiply the learning rate by
// Backoff, re-arm the guard, and let the caller resume — at most
// MaxRollbacks times, after which it fails with a diagnostic report.
type Supervisor struct {
	// Dir is the checkpoint directory rollbacks restore from.
	Dir string
	// MaxRollbacks bounds the retry budget; a trip past the budget fails
	// the run. 0 means no retries (every trip is fatal).
	MaxRollbacks int
	// Backoff is the learning-rate multiplier applied on each rollback
	// (0 selects the default 0.5 — halving).
	Backoff float64
	// Checkpoint, when set, is called by Run (and by callers driving
	// their own loop) to persist a good generation. The supervisor gates
	// every call on a full parameter scan so a poisoned model is never
	// checkpointed — rollback targets must be clean by construction.
	Checkpoint func() (string, error)
	// Metrics, when set, receives rollback/health/scan updates.
	Metrics *Metrics
	// Log, when set, records trips and recoveries.
	Log *slog.Logger

	report Report
}

// RollbackEvent records one successful automatic recovery.
type RollbackEvent struct {
	// Trip is the guard trip that forced the rollback.
	Trip Trip
	// CheckpointPath and CheckpointStep identify the restored generation.
	CheckpointPath string
	CheckpointStep int
	// SkippedCheckpoints lists corrupt generations LatestCheckpoint
	// passed over while locating a good one.
	SkippedCheckpoints []string
	// LearnRate is the backed-off learning rate the run resumed with.
	LearnRate float64
}

// Report is the supervisor's diagnostic record: every recovery, and the
// final trip when the budget ran out.
type Report struct {
	Rollbacks []RollbackEvent
	// Failed is true when a trip exhausted the budget or recovery itself
	// failed; FinalTrip then holds the unrecovered trip.
	Failed    bool
	FinalTrip *Trip
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "guard report: %d rollback(s)", len(r.Rollbacks))
	if r.Failed {
		sb.WriteString(", FAILED")
	}
	sb.WriteString("\n")
	for i, ev := range r.Rollbacks {
		fmt.Fprintf(&sb, "  rollback %d: %s -> restored %s (step %d), learning rate %g\n",
			i+1, ev.Trip.String(), ev.CheckpointPath, ev.CheckpointStep, ev.LearnRate)
		for _, s := range ev.SkippedCheckpoints {
			fmt.Fprintf(&sb, "    skipped corrupt checkpoint %s\n", s)
		}
	}
	if r.FinalTrip != nil {
		fmt.Fprintf(&sb, "  unrecovered: %s\n", r.FinalTrip.String())
	}
	return sb.String()
}

// Report returns the supervisor's diagnostic record so far.
func (s *Supervisor) Report() *Report { return &s.report }

func (s *Supervisor) backoff() float64 {
	if s.Backoff == 0 {
		return 0.5
	}
	return s.Backoff
}

// HandleTrip checks t for a tripped guard and, if one is pending, rolls
// back and backs off. It returns (false, nil) while healthy,
// (true, nil) after a successful recovery, and a non-nil error when the
// trip could not be recovered (budget exhausted, no usable checkpoint) —
// the error wraps the full diagnostic report.
func (s *Supervisor) HandleTrip(t Trainee) (recovered bool, err error) {
	trip := t.GuardTrip()
	if trip == nil {
		return false, nil
	}
	return s.recover(t, trip)
}

// GateCheckpoint fully scans t's parameters and reports whether a
// checkpoint may be written. A clean scan returns (true, nil). A poisoned
// scan never writes: it counts the findings, treats them as a trip, and
// attempts recovery — returning (false, nil) when recovered, or the
// recovery error. This is the barrier that keeps every generation in Dir
// a valid rollback target.
func (s *Supervisor) GateCheckpoint(t Trainee) (ok bool, err error) {
	res := ScanModel(t.Model())
	if res.Total() == 0 {
		return true, nil
	}
	if s.Metrics != nil {
		s.Metrics.NonFiniteParams.Add(uint64(res.Total()))
	}
	trip := &Trip{Step: t.StepsDone(), Reason: ReasonNonFiniteParams, Detail: res.String()}
	_, err = s.recover(t, trip)
	return false, err
}

// recover performs one rollback: health gauge down, budget check, restore
// from the newest good generation, back off the learning rate, re-arm,
// health gauge up.
func (s *Supervisor) recover(t Trainee, trip *Trip) (bool, error) {
	if s.Metrics != nil {
		s.Metrics.Health.Set(0)
	}
	if s.Log != nil {
		s.Log.Warn("training guard tripped", "step", trip.Step, "reason", trip.Reason, "detail", trip.Detail)
	}
	fail := func(err error) (bool, error) {
		s.report.Failed = true
		s.report.FinalTrip = trip
		return false, fmt.Errorf("%w\n%s", err, s.report.String())
	}
	if len(s.report.Rollbacks) >= s.MaxRollbacks {
		return fail(fmt.Errorf("guard: %s: rollback budget (%d) exhausted", trip.String(), s.MaxRollbacks))
	}
	m, meta, path, skipped, err := store.LatestCheckpoint(s.Dir)
	if err != nil {
		return fail(fmt.Errorf("guard: %s: no usable checkpoint in %s: %w", trip.String(), s.Dir, err))
	}
	if err := t.RestoreFromMeta(m, meta); err != nil {
		return fail(fmt.Errorf("guard: %s: restoring %s: %w", trip.String(), path, err))
	}
	lr := t.ScaleLearnRate(s.backoff())
	t.ClearGuardTrip()
	ev := RollbackEvent{
		Trip:               *trip,
		CheckpointPath:     path,
		CheckpointStep:     meta.Step,
		SkippedCheckpoints: skipped,
		LearnRate:          lr,
	}
	s.report.Rollbacks = append(s.report.Rollbacks, ev)
	if s.Metrics != nil {
		s.Metrics.Rollbacks.Inc()
		s.Metrics.Health.Set(1)
	}
	if s.Log != nil {
		s.Log.Info("rolled back to checkpoint", "path", path, "step", meta.Step, "learn_rate", lr)
	}
	return true, nil
}

// RunOptions parameterizes Supervisor.Run.
type RunOptions struct {
	// TotalSteps is the step count to train to.
	TotalSteps int
	// BatchSteps is the RunSteps slice size (0 selects 4096). Trips are
	// handled at batch boundaries, so smaller batches recover sooner at
	// the cost of more quiescent points.
	BatchSteps int
	// CheckpointEvery is the step interval between gated checkpoint
	// writes (0 selects BatchSteps).
	CheckpointEvery int
	// AfterBatch, when set, runs after every batch while the trainee is
	// quiescent — the chaos tests' injection point.
	AfterBatch func(step int)
}

// Run drives t to opts.TotalSteps under supervision: train in batches,
// recover every trip, and write gated checkpoints on the configured
// cadence (plus one up front, so the very first trip has a rollback
// target). It returns the diagnostic report, with a non-nil error when a
// trip could not be recovered.
func (s *Supervisor) Run(t Trainee, opts RunOptions) (*Report, error) {
	batch := opts.BatchSteps
	if batch <= 0 {
		batch = 4096
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = batch
	}
	writeGated := func() error {
		ok, err := s.GateCheckpoint(t)
		if err != nil || !ok {
			return err
		}
		if _, err := s.Checkpoint(); err != nil {
			return fmt.Errorf("guard: writing checkpoint: %w", err)
		}
		return nil
	}
	if s.Checkpoint != nil {
		if err := writeGated(); err != nil {
			return &s.report, err
		}
	}
	lastCkpt := t.StepsDone()
	for t.StepsDone() < opts.TotalSteps {
		n := opts.TotalSteps - t.StepsDone()
		if n > batch {
			n = batch
		}
		t.RunSteps(n)
		if opts.AfterBatch != nil {
			opts.AfterBatch(t.StepsDone())
		}
		recovered, err := s.HandleTrip(t)
		if err != nil {
			return &s.report, err
		}
		if recovered {
			lastCkpt = t.StepsDone()
			continue
		}
		done := t.StepsDone() >= opts.TotalSteps
		if s.Checkpoint != nil && (done || t.StepsDone()-lastCkpt >= every) {
			if err := writeGated(); err != nil {
				return &s.report, err
			}
			lastCkpt = t.StepsDone()
		}
	}
	return &s.report, nil
}

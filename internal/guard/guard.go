// Package guard implements training guardrails: a loss watchdog that
// detects divergence, parameter health scans that detect non-finite
// factors, and a supervisor that recovers a tripped run from its own
// checkpoints with learning-rate backoff.
//
// CLAPF's log-sigmoid objectives are trained by plain SGD, and like other
// BPR-style pairwise learners they diverge silently when the learning
// rate, λ-mix, or sampling geometry pushes σ(·) into saturation: one
// overflowed risk value writes NaN into U or V, every score touching the
// row becomes NaN, and without a guard the damage is only discovered at
// serve time. The guard layer turns that silent failure into a tripped
// run that rolls back to the last good checkpoint, halves the learning
// rate, and continues — or, when the retry budget is exhausted, fails
// loudly with a diagnostic report instead of reporting garbage.
//
// The detection state machine lives here; the trainers in internal/core
// own the hot path and call into it at their natural quiescent points
// (every step for sentinels, every CheckEvery steps for scans and the
// watchdog, segment barriers for the parallel trainer).
package guard

import (
	"fmt"
	"math"

	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// Trip reasons. Reason strings are stable identifiers: they appear in
// diagnostics, logs, and tests.
const (
	// ReasonNonFiniteRisk: a per-step risk value R was NaN or ±Inf — the
	// earliest observable symptom of divergence.
	ReasonNonFiniteRisk = "nonfinite-risk"
	// ReasonNonFiniteParams: a health scan found NaN/±Inf entries in the
	// parameter vectors.
	ReasonNonFiniteParams = "nonfinite-params"
	// ReasonNonFiniteLoss: the smoothed loss itself became non-finite.
	ReasonNonFiniteLoss = "nonfinite-loss"
	// ReasonLossRise: the loss EWMA rose RiseFactor× above its best value
	// for RisePatience consecutive checks — divergence without overflow.
	ReasonLossRise = "loss-rise"
)

// Trip records why a guarded trainer stopped applying updates.
type Trip struct {
	// Step is the aggregate SGD step at which the trip was recorded (for
	// parallel trainers, the barrier step at which it was merged).
	Step int
	// Reason is one of the Reason* constants.
	Reason string
	// Detail is a human-readable elaboration (the offending value, the
	// scan counts, the worker id).
	Detail string
}

func (t *Trip) String() string {
	return fmt.Sprintf("%s at step %d (%s)", t.Reason, t.Step, t.Detail)
}

// Config parameterizes a trainer's guard. The zero value of every field
// selects the default; see Default.
type Config struct {
	// Watchdog enables divergence detection: per-step non-finite risk
	// sentinels, the loss-EWMA rise watchdog, and sampled parameter
	// scans. When false, a guard only accounts for gradient clipping.
	Watchdog bool
	// CheckEvery is the step interval between guard checks (watchdog
	// observation, sampled parameter scan, metric flush). The parallel
	// trainer caps its segment length at this interval so checks always
	// run at quiescent barriers.
	CheckEvery int
	// RiseFactor is the multiplicative loss-rise threshold: the watchdog
	// trips when the loss EWMA exceeds RiseFactor × its best (lowest)
	// observed value.
	RiseFactor float64
	// RisePatience is how many consecutive over-threshold checks are
	// required before tripping — one bad interval (a DSS refresh, a noisy
	// segment) is not divergence.
	RisePatience int
	// WarmupSteps delays rise detection while the EWMA is still dominated
	// by the initial transient. Non-finite detection is never delayed.
	WarmupSteps int
	// ScanSample is the number of parameter entries each periodic health
	// scan samples (uniformly across U, V, and b). 0 selects the default;
	// negative disables sampled scans (full scans at checkpoint gates
	// still run).
	ScanSample int
}

// Default check cadence and thresholds. The cadence trades detection
// latency for hot-path cost: each check costs a parameter sample plus, on
// the parallel trainer, a worker barrier, so 16384 steps (~10 ms of SGD)
// keeps the amortized overhead well under a percent — even when workers
// outnumber cores and every barrier is a context switch — while still
// bounding how far a divergence can run before it is caught.
const (
	DefaultCheckEvery   = 16384
	DefaultRiseFactor   = 1.5
	DefaultRisePatience = 3
	DefaultScanSample   = 1024
)

// Default returns c with every zero field replaced by its default.
func (c Config) Default() Config {
	if c.CheckEvery == 0 {
		c.CheckEvery = DefaultCheckEvery
	}
	if c.RiseFactor == 0 {
		c.RiseFactor = DefaultRiseFactor
	}
	if c.RisePatience == 0 {
		c.RisePatience = DefaultRisePatience
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = 2 * c.CheckEvery
	}
	if c.ScanSample == 0 {
		c.ScanSample = DefaultScanSample
	}
	return c
}

// Validate reports the first problem with the configuration (after
// defaults are applied).
func (c Config) Validate() error {
	switch {
	case c.CheckEvery < 0:
		return fmt.Errorf("guard: CheckEvery = %d, want >= 0 (0 selects the default)", c.CheckEvery)
	case c.RiseFactor <= 1 || math.IsNaN(c.RiseFactor) || math.IsInf(c.RiseFactor, 0):
		return fmt.Errorf("guard: RiseFactor = %v, want finite > 1", c.RiseFactor)
	case c.RisePatience < 1:
		return fmt.Errorf("guard: RisePatience = %d, want >= 1", c.RisePatience)
	case c.WarmupSteps < 0:
		return fmt.Errorf("guard: WarmupSteps = %d, want >= 0", c.WarmupSteps)
	}
	return nil
}

// Watchdog watches a smoothed-loss curve for sustained rise or
// non-finite values. It keeps the best (lowest) EWMA seen so far as the
// baseline; healthy SGD loss curves decrease toward a plateau, so an EWMA
// holding RiseFactor× above the running best for RisePatience consecutive
// checks means the optimization is moving away from every point it has
// visited.
type Watchdog struct {
	cfg    Config
	best   float64
	seen   bool
	streak int
}

// NewWatchdog returns a watchdog with cfg's thresholds (defaults applied).
func NewWatchdog(cfg Config) *Watchdog {
	return &Watchdog{cfg: cfg.Default()}
}

// Observe folds one check-interval observation of the loss EWMA and
// returns a Trip when the curve has diverged. n is the number of loss
// observations behind the EWMA; 0 means the curve carries no information
// yet and the observation is skipped.
func (wd *Watchdog) Observe(step int, ewma float64, n int) *Trip {
	if n == 0 {
		return nil
	}
	if math.IsNaN(ewma) || math.IsInf(ewma, 0) {
		return &Trip{Step: step, Reason: ReasonNonFiniteLoss,
			Detail: fmt.Sprintf("loss EWMA = %v after %d observations", ewma, n)}
	}
	if !wd.seen || ewma < wd.best {
		wd.best, wd.seen = ewma, true
		wd.streak = 0
		return nil
	}
	if step < wd.cfg.WarmupSteps {
		return nil
	}
	if ewma > wd.cfg.RiseFactor*wd.best {
		wd.streak++
		if wd.streak >= wd.cfg.RisePatience {
			return &Trip{Step: step, Reason: ReasonLossRise,
				Detail: fmt.Sprintf("loss EWMA %.6g held above %.3g× best %.6g for %d checks",
					ewma, wd.cfg.RiseFactor, wd.best, wd.streak)}
		}
		return nil
	}
	wd.streak = 0
	return nil
}

// Reset clears the learned baseline. Called after a rollback: the
// restored trajectory re-learns its best from the checkpoint's loss level
// rather than comparing against a best the rewound run never reached.
func (wd *Watchdog) Reset() {
	wd.best, wd.seen, wd.streak = 0, false, 0
}

// ScanResult reports non-finite parameter counts from a health scan.
type ScanResult struct {
	U, V, B int
	// Sampled is the number of entries inspected; 0 means a full scan.
	Sampled int
}

// Total returns the total number of non-finite entries found.
func (r ScanResult) Total() int { return r.U + r.V + r.B }

func (r ScanResult) String() string {
	kind := "full scan"
	if r.Sampled > 0 {
		kind = fmt.Sprintf("sample of %d", r.Sampled)
	}
	return fmt.Sprintf("%d non-finite entries (%d in U, %d in V, %d in b; %s)",
		r.Total(), r.U, r.V, r.B, kind)
}

// ScanVector counts non-finite entries in a single factor vector. The
// online-update path runs it on every fold-in solve before the result can
// reach the serving overlay — the same gate ScanModel applies to whole
// checkpoints, at per-row cost.
func ScanVector(v []float64) int {
	n := 0
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			n++
		}
	}
	return n
}

// ScanModel fully scans the model's parameters for non-finite entries.
func ScanModel(m *mf.Model) ScanResult {
	u, v, b := m.CountNonFinite()
	return ScanResult{U: u, V: v, B: b}
}

// SampleModel inspects n entries drawn uniformly (with replacement)
// across U, V, and b. It is the cheap periodic complement to the full
// scan at checkpoint gates: poison concentrated in hot rows is caught by
// the per-step risk sentinel first, so the sample's job is the cold rows
// nothing touches.
func SampleModel(m *mf.Model, rng *mathx.RNG, n int) ScanResult {
	u, v, b := m.RawParams()
	total := len(u) + len(v) + len(b)
	if n > total {
		return ScanModel(m)
	}
	res := ScanResult{Sampled: n}
	for s := 0; s < n; s++ {
		idx := rng.Intn(total)
		var x float64
		switch {
		case idx < len(u):
			x = u[idx]
		case idx < len(u)+len(v):
			x = v[idx-len(u)]
		default:
			x = b[idx-len(u)-len(v)]
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			switch {
			case idx < len(u):
				res.U++
			case idx < len(u)+len(v):
				res.V++
			default:
				res.B++
			}
		}
	}
	return res
}

package guard

import "clapf/internal/obs"

// Metrics is the guard subsystem's obs export. All fields are plain
// counters/gauges updated from quiescent points (check boundaries,
// barriers, rollbacks), never from inside the SGD hot path — trainers
// accumulate locally and flush deltas here.
type Metrics struct {
	// Rollbacks counts automatic checkpoint rollbacks
	// (clapf_train_rollbacks_total).
	Rollbacks *obs.Counter
	// NonFiniteParams counts non-finite parameter entries found by health
	// scans (clapf_nonfinite_params_total). Sampled and full scans both
	// feed it, so the count is a detection tally, not a census.
	NonFiniteParams *obs.Counter
	// Clips counts SGD updates whose data-term gradient was norm-clipped
	// (clapf_grad_clip_total).
	Clips *obs.Counter
	// Health is 1 while the guarded run is healthy and 0 from the moment
	// a guard trips until recovery completes (clapf_train_health).
	Health *obs.Gauge
}

// NewMetrics registers the guard metrics on reg and returns them with the
// health gauge initialized to healthy.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Rollbacks: reg.NewCounter("clapf_train_rollbacks_total",
			"Automatic rollbacks to the last good checkpoint after a tripped training guard."),
		NonFiniteParams: reg.NewCounter("clapf_nonfinite_params_total",
			"Non-finite (NaN/Inf) parameter entries found by training health scans."),
		Clips: reg.NewCounter("clapf_grad_clip_total",
			"SGD updates whose data-term gradient exceeded -clip-norm and was scaled down."),
		Health: reg.NewGauge("clapf_train_health",
			"1 while the guarded training run is healthy, 0 from guard trip until recovery."),
	}
	m.Health.Set(1)
	return m
}

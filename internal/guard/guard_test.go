package guard

import (
	"math"
	"strings"
	"testing"

	"clapf/internal/mathx"
	"clapf/internal/mf"
)

func TestConfigDefault(t *testing.T) {
	d := Config{}.Default()
	if d.CheckEvery != DefaultCheckEvery || d.RiseFactor != DefaultRiseFactor ||
		d.RisePatience != DefaultRisePatience || d.ScanSample != DefaultScanSample {
		t.Errorf("zero config defaulted to %+v", d)
	}
	if d.WarmupSteps != 2*DefaultCheckEvery {
		t.Errorf("WarmupSteps = %d, want 2×CheckEvery", d.WarmupSteps)
	}

	// Non-zero fields survive, including a negative ScanSample (disabled).
	c := Config{CheckEvery: 64, RiseFactor: 2, RisePatience: 1, WarmupSteps: 7, ScanSample: -1}
	if got := c.Default(); got != c {
		t.Errorf("explicit config rewritten: %+v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"defaults", func(c *Config) {}, ""},
		{"negative check every", func(c *Config) { c.CheckEvery = -1 }, "CheckEvery"},
		{"rise factor one", func(c *Config) { c.RiseFactor = 1 }, "RiseFactor"},
		{"rise factor nan", func(c *Config) { c.RiseFactor = math.NaN() }, "RiseFactor"},
		{"rise factor inf", func(c *Config) { c.RiseFactor = math.Inf(1) }, "RiseFactor"},
		{"zero patience", func(c *Config) { c.RisePatience = -2 }, "RisePatience"},
		{"negative warmup", func(c *Config) { c.WarmupSteps = -1 }, "WarmupSteps"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := Config{}.Default()
			tc.mut(&c)
			err := c.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error naming %s", err, tc.want)
			}
		})
	}
}

func TestWatchdogSkipsEmptyCurve(t *testing.T) {
	wd := NewWatchdog(Config{})
	if trip := wd.Observe(100, math.NaN(), 0); trip != nil {
		t.Fatalf("n=0 observation tripped: %v", trip)
	}
}

func TestWatchdogNonFiniteLoss(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		// Step 0 is deep inside warmup; non-finite detection is never delayed.
		wd := NewWatchdog(Config{})
		trip := wd.Observe(0, bad, 10)
		if trip == nil || trip.Reason != ReasonNonFiniteLoss {
			t.Errorf("ewma=%v: trip = %v, want %s", bad, trip, ReasonNonFiniteLoss)
		}
	}
}

func TestWatchdogRisePatience(t *testing.T) {
	wd := NewWatchdog(Config{RiseFactor: 1.5, RisePatience: 3, WarmupSteps: 1})
	if trip := wd.Observe(10, 1.0, 5); trip != nil {
		t.Fatalf("first observation tripped: %v", trip)
	}
	// Three consecutive checks above 1.5× best: trip lands on the third.
	for i, step := range []int{20, 30} {
		if trip := wd.Observe(step, 2.0, 5); trip != nil {
			t.Fatalf("tripped at streak %d: %v", i+1, trip)
		}
	}
	trip := wd.Observe(40, 2.0, 5)
	if trip == nil || trip.Reason != ReasonLossRise || trip.Step != 40 {
		t.Fatalf("trip = %v, want %s at step 40", trip, ReasonLossRise)
	}
}

func TestWatchdogStreakResets(t *testing.T) {
	wd := NewWatchdog(Config{RiseFactor: 1.5, RisePatience: 3, WarmupSteps: 1})
	wd.Observe(10, 1.0, 5)
	wd.Observe(20, 2.0, 5)
	wd.Observe(30, 2.0, 5)
	// Back under the threshold: one noisy interval is not divergence.
	if trip := wd.Observe(40, 1.2, 5); trip != nil {
		t.Fatalf("recovery observation tripped: %v", trip)
	}
	wd.Observe(50, 2.0, 5)
	if trip := wd.Observe(60, 2.0, 5); trip != nil {
		t.Fatalf("streak survived the reset: %v", trip)
	}
}

func TestWatchdogWarmupDelaysRiseOnly(t *testing.T) {
	wd := NewWatchdog(Config{RiseFactor: 1.5, RisePatience: 1, WarmupSteps: 100})
	wd.Observe(10, 1.0, 5)
	if trip := wd.Observe(50, 10.0, 5); trip != nil {
		t.Fatalf("rise detection fired during warmup: %v", trip)
	}
	if trip := wd.Observe(100, 10.0, 5); trip == nil {
		t.Fatal("rise detection silent after warmup")
	}
}

func TestWatchdogNewBestClearsStreak(t *testing.T) {
	wd := NewWatchdog(Config{RiseFactor: 1.5, RisePatience: 2, WarmupSteps: 1})
	wd.Observe(10, 1.0, 5)
	wd.Observe(20, 2.0, 5) // streak 1
	wd.Observe(30, 0.5, 5) // new best: baseline and streak both reset
	// 0.9 > 1.5 × 0.5, but the streak restarted — patience 2 needs two checks.
	if trip := wd.Observe(40, 0.9, 5); trip != nil {
		t.Fatalf("streak survived the new best: %v", trip)
	}
	if trip := wd.Observe(50, 0.9, 5); trip == nil {
		t.Fatal("rise above the new best not detected")
	}
}

func TestWatchdogReset(t *testing.T) {
	wd := NewWatchdog(Config{RiseFactor: 1.5, RisePatience: 1, WarmupSteps: 1})
	wd.Observe(10, 1.0, 5)
	if trip := wd.Observe(20, 5.0, 5); trip == nil {
		t.Fatal("no trip before reset")
	}
	wd.Reset()
	// After a rollback the rewound run re-learns its baseline: a loss level
	// that would have tripped against the old best is just the new best.
	if trip := wd.Observe(30, 5.0, 5); trip != nil {
		t.Fatalf("tripped against a pre-reset baseline: %v", trip)
	}
}

func scanTestModel(t *testing.T) *mf.Model {
	t.Helper()
	return mf.MustNew(mf.Config{NumUsers: 6, NumItems: 10, Dim: 4, UseBias: true, InitStd: 0.1})
}

func TestScanModel(t *testing.T) {
	m := scanTestModel(t)
	if res := ScanModel(m); res.Total() != 0 {
		t.Fatalf("fresh model scans dirty: %v", res)
	}
	u, v, b := m.RawParams()
	u[0] = math.Inf(1)
	v[3] = math.NaN()
	b[2] = math.NaN()
	res := ScanModel(m)
	if res.U != 1 || res.V != 1 || res.B != 1 || res.Sampled != 0 {
		t.Fatalf("ScanModel = %+v, want 1/1/1 full scan", res)
	}
	if s := res.String(); !strings.Contains(s, "full scan") || !strings.Contains(s, "3 non-finite") {
		t.Errorf("String() = %q", s)
	}
}

func TestSampleModel(t *testing.T) {
	m := scanTestModel(t)
	rng := mathx.NewRNG(1)

	// Oversized sample budget degenerates to a full scan.
	u, _, _ := m.RawParams()
	u[1] = math.NaN()
	res := SampleModel(m, rng, 1<<20)
	if res.Sampled != 0 || res.U != 1 {
		t.Fatalf("oversized sample = %+v, want full scan finding 1", res)
	}

	// A fully poisoned model: every sampled entry is non-finite.
	poisoned := scanTestModel(t)
	pu, pv, pb := poisoned.RawParams()
	for _, s := range [][]float64{pu, pv, pb} {
		for i := range s {
			s[i] = math.NaN()
		}
	}
	res = SampleModel(poisoned, rng, 16)
	if res.Sampled != 16 || res.Total() != 16 {
		t.Fatalf("poisoned sample = %+v, want all 16 hits", res)
	}
	if s := res.String(); !strings.Contains(s, "sample of 16") {
		t.Errorf("String() = %q", s)
	}

	// A clean model samples clean.
	if res := SampleModel(scanTestModel(t), rng, 64); res.Total() != 0 {
		t.Fatalf("clean sample = %+v", res)
	}
}

func TestTripString(t *testing.T) {
	trip := &Trip{Step: 42, Reason: ReasonNonFiniteRisk, Detail: "risk R = NaN"}
	want := "nonfinite-risk at step 42 (risk R = NaN)"
	if got := trip.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

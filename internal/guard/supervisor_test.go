package guard

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/store"
)

// fakeTrainee is a minimal Trainee: it counts steps, carries a model, and
// lets tests plant trips and observe rollbacks without running SGD.
type fakeTrainee struct {
	steps       int
	model       *mf.Model
	trip        *Trip
	lr          float64
	restores    int
	failRestore bool
}

func (f *fakeTrainee) RunSteps(n int)   { f.steps += n }
func (f *fakeTrainee) StepsDone() int   { return f.steps }
func (f *fakeTrainee) Model() *mf.Model { return f.model }
func (f *fakeTrainee) GuardTrip() *Trip { return f.trip }
func (f *fakeTrainee) ClearGuardTrip()  { f.trip = nil }
func (f *fakeTrainee) ScaleLearnRate(factor float64) float64 {
	f.lr *= factor
	return f.lr
}
func (f *fakeTrainee) RestoreFromMeta(m *mf.Model, meta *store.Meta) error {
	if f.failRestore {
		return fmt.Errorf("fake restore refused")
	}
	f.restores++
	f.model = m
	f.steps = meta.Step
	return nil
}

func newFakeTrainee(t *testing.T) *fakeTrainee {
	t.Helper()
	m := mf.MustNew(mf.Config{NumUsers: 6, NumItems: 10, Dim: 4, UseBias: true, InitStd: 0.1})
	return &fakeTrainee{model: m, lr: 0.1}
}

// seedCheckpoint writes f's current state into dir as a rollback target.
func seedCheckpoint(t *testing.T, dir string, f *fakeTrainee) {
	t.Helper()
	if _, err := store.WriteCheckpoint(dir, f.model, &store.Meta{Step: f.steps}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHandleTripHealthy(t *testing.T) {
	s := &Supervisor{Dir: t.TempDir(), MaxRollbacks: 3}
	f := newFakeTrainee(t)
	recovered, err := s.HandleTrip(f)
	if recovered || err != nil {
		t.Fatalf("HandleTrip on healthy trainee = (%v, %v)", recovered, err)
	}
	if len(s.Report().Rollbacks) != 0 {
		t.Errorf("healthy trainee produced rollback events")
	}
}

func TestHandleTripRecovers(t *testing.T) {
	dir := t.TempDir()
	f := newFakeTrainee(t)
	f.steps = 100
	seedCheckpoint(t, dir, f)

	metrics := NewMetrics(obs.NewRegistry())
	s := &Supervisor{Dir: dir, MaxRollbacks: 2, Metrics: metrics}

	f.steps = 500
	f.trip = &Trip{Step: 500, Reason: ReasonNonFiniteRisk, Detail: "risk R = NaN"}
	recovered, err := s.HandleTrip(f)
	if !recovered || err != nil {
		t.Fatalf("HandleTrip = (%v, %v), want recovery", recovered, err)
	}
	if f.steps != 100 || f.restores != 1 {
		t.Errorf("rewound to step %d with %d restores, want step 100, 1 restore", f.steps, f.restores)
	}
	if f.trip != nil {
		t.Error("guard not re-armed after recovery")
	}
	if f.lr != 0.05 {
		t.Errorf("learning rate = %v after default backoff, want 0.05", f.lr)
	}
	rep := s.Report()
	if len(rep.Rollbacks) != 1 || rep.Failed {
		t.Fatalf("report = %+v, want one clean rollback", rep)
	}
	ev := rep.Rollbacks[0]
	if ev.CheckpointStep != 100 || ev.LearnRate != 0.05 || ev.Trip.Reason != ReasonNonFiniteRisk {
		t.Errorf("rollback event = %+v", ev)
	}
	if metrics.Rollbacks.Value() != 1 {
		t.Errorf("clapf_train_rollbacks_total = %d, want 1", metrics.Rollbacks.Value())
	}
	if metrics.Health.Value() != 1 {
		t.Errorf("clapf_train_health = %v after recovery, want 1", metrics.Health.Value())
	}
}

func TestCustomBackoff(t *testing.T) {
	dir := t.TempDir()
	f := newFakeTrainee(t)
	seedCheckpoint(t, dir, f)
	s := &Supervisor{Dir: dir, MaxRollbacks: 1, Backoff: 0.25}
	f.trip = &Trip{Step: 10, Reason: ReasonLossRise, Detail: "test"}
	if _, err := s.HandleTrip(f); err != nil {
		t.Fatal(err)
	}
	if got := f.lr; math.Abs(got-0.025) > 1e-15 {
		t.Errorf("learning rate = %v after 0.25 backoff, want 0.025", got)
	}
}

func TestRollbackBudgetExhausted(t *testing.T) {
	dir := t.TempDir()
	f := newFakeTrainee(t)
	seedCheckpoint(t, dir, f)
	metrics := NewMetrics(obs.NewRegistry())
	s := &Supervisor{Dir: dir, MaxRollbacks: 1, Metrics: metrics}

	f.trip = &Trip{Step: 10, Reason: ReasonNonFiniteRisk, Detail: "first"}
	if _, err := s.HandleTrip(f); err != nil {
		t.Fatal(err)
	}
	f.trip = &Trip{Step: 20, Reason: ReasonNonFiniteRisk, Detail: "second"}
	_, err := s.HandleTrip(f)
	if err == nil {
		t.Fatal("second trip recovered past a budget of 1")
	}
	if !strings.Contains(err.Error(), "budget") || !strings.Contains(err.Error(), "guard report") {
		t.Errorf("error lacks diagnostic report: %v", err)
	}
	rep := s.Report()
	if !rep.Failed || rep.FinalTrip == nil || rep.FinalTrip.Detail != "second" {
		t.Errorf("report = %+v, want failure carrying the second trip", rep)
	}
	if metrics.Health.Value() != 0 {
		t.Errorf("clapf_train_health = %v after fatal trip, want 0", metrics.Health.Value())
	}
}

func TestNoUsableCheckpointFails(t *testing.T) {
	f := newFakeTrainee(t)
	s := &Supervisor{Dir: t.TempDir(), MaxRollbacks: 3}
	f.trip = &Trip{Step: 10, Reason: ReasonNonFiniteRisk, Detail: "test"}
	_, err := s.HandleTrip(f)
	if err == nil || !strings.Contains(err.Error(), "no usable checkpoint") {
		t.Fatalf("HandleTrip without checkpoints = %v", err)
	}
	if !s.Report().Failed {
		t.Error("report not marked failed")
	}
}

func TestRestoreFailureFails(t *testing.T) {
	dir := t.TempDir()
	f := newFakeTrainee(t)
	seedCheckpoint(t, dir, f)
	f.failRestore = true
	s := &Supervisor{Dir: dir, MaxRollbacks: 3}
	f.trip = &Trip{Step: 10, Reason: ReasonNonFiniteRisk, Detail: "test"}
	if _, err := s.HandleTrip(f); err == nil || !strings.Contains(err.Error(), "fake restore refused") {
		t.Fatalf("restore failure not surfaced: %v", err)
	}
}

func TestGateCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f := newFakeTrainee(t)
	seedCheckpoint(t, dir, f)
	metrics := NewMetrics(obs.NewRegistry())
	s := &Supervisor{Dir: dir, MaxRollbacks: 2, Metrics: metrics}

	if ok, err := s.GateCheckpoint(f); !ok || err != nil {
		t.Fatalf("clean gate = (%v, %v)", ok, err)
	}

	// Poison the live model: the gate must refuse the write AND recover.
	clean := f.model
	f.model = clean.Clone()
	_, v, _ := f.model.RawParams()
	v[0], v[7] = math.NaN(), math.Inf(1)
	f.steps = 300
	ok, err := s.GateCheckpoint(f)
	if ok || err != nil {
		t.Fatalf("poisoned gate = (%v, %v), want refusal with recovery", ok, err)
	}
	if f.restores != 1 {
		t.Errorf("poisoned gate restored %d times, want 1", f.restores)
	}
	if res := ScanModel(f.model); res.Total() != 0 {
		t.Errorf("model still poisoned after gate recovery: %v", res)
	}
	if metrics.NonFiniteParams.Value() != 2 {
		t.Errorf("clapf_nonfinite_params_total = %d, want 2", metrics.NonFiniteParams.Value())
	}
	rep := s.Report()
	if len(rep.Rollbacks) != 1 || rep.Rollbacks[0].Trip.Reason != ReasonNonFiniteParams {
		t.Errorf("report = %+v, want one %s rollback", rep, ReasonNonFiniteParams)
	}
}

func TestRunRecoversMidTraining(t *testing.T) {
	dir := t.TempDir()
	f := newFakeTrainee(t)
	s := &Supervisor{
		Dir:          dir,
		MaxRollbacks: 2,
		Checkpoint: func() (string, error) {
			return store.WriteCheckpoint(dir, f.model, &store.Meta{Step: f.steps}, 0)
		},
	}
	tripped := false
	rep, err := s.Run(f, RunOptions{
		TotalSteps: 1000,
		BatchSteps: 100,
		AfterBatch: func(step int) {
			if step >= 500 && !tripped {
				tripped = true
				f.trip = &Trip{Step: step, Reason: ReasonNonFiniteRisk, Detail: "injected"}
			}
		},
	})
	if err != nil {
		t.Fatalf("Run = %v\n%s", err, rep.String())
	}
	if f.steps != 1000 {
		t.Errorf("stopped at step %d, want 1000", f.steps)
	}
	if len(rep.Rollbacks) != 1 {
		t.Fatalf("report = %s, want exactly one rollback", rep.String())
	}
	// The trip fired at step 500; the freshest gated checkpoint was at 400.
	if ev := rep.Rollbacks[0]; ev.CheckpointStep != 400 {
		t.Errorf("rolled back to step %d, want 400", ev.CheckpointStep)
	}
	if f.lr != 0.05 {
		t.Errorf("learning rate = %v, want one halving", f.lr)
	}
	// The final gated checkpoint captured the finished run.
	_, meta, _, _, err := store.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 1000 {
		t.Errorf("final checkpoint at step %d, want 1000", meta.Step)
	}
}

func TestRunGateBlocksPoisonedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f := newFakeTrainee(t)
	s := &Supervisor{
		Dir:          dir,
		MaxRollbacks: 2,
		Checkpoint: func() (string, error) {
			return store.WriteCheckpoint(dir, f.model, &store.Meta{Step: f.steps}, 0)
		},
	}
	poisoned := false
	rep, err := s.Run(f, RunOptions{
		TotalSteps: 600,
		BatchSteps: 100,
		AfterBatch: func(step int) {
			if step >= 300 && !poisoned {
				poisoned = true
				_, v, _ := f.model.RawParams()
				v[5] = math.NaN()
			}
		},
	})
	if err != nil {
		t.Fatalf("Run = %v\n%s", err, rep.String())
	}
	if len(rep.Rollbacks) != 1 || rep.Rollbacks[0].Trip.Reason != ReasonNonFiniteParams {
		t.Fatalf("report = %s, want one %s rollback", rep.String(), ReasonNonFiniteParams)
	}
	// Every surviving generation must scan clean — that is the gate's whole job.
	m, _, path, _, err := store.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res := ScanModel(m); res.Total() != 0 {
		t.Errorf("checkpoint %s carries poison: %v", path, res)
	}
	if res := ScanModel(f.model); res.Total() != 0 {
		t.Errorf("final model carries poison: %v", res)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		Rollbacks: []RollbackEvent{{
			Trip:               Trip{Step: 500, Reason: ReasonLossRise, Detail: "ewma rose"},
			CheckpointPath:     "/ckpt/ckpt-000000000400.clapf",
			CheckpointStep:     400,
			SkippedCheckpoints: []string{"/ckpt/ckpt-000000000450.clapf"},
			LearnRate:          0.05,
		}},
		Failed:    true,
		FinalTrip: &Trip{Step: 900, Reason: ReasonNonFiniteParams, Detail: "2 entries"},
	}
	s := rep.String()
	for _, want := range []string{"1 rollback(s)", "FAILED", "loss-rise at step 500",
		"step 400", "skipped corrupt checkpoint", "unrecovered: nonfinite-params at step 900"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q lacks %q", s, want)
		}
	}
}

package retrieval

import (
	"fmt"
	"math"
	"sort"

	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/rank"
)

// Index is a cluster-pruned IVF index over one immutable model's item
// factors. It is read-only after construction and safe for concurrent
// queries; the serve path builds a fresh Index on every model swap, so an
// Index never outlives the model generation it was built from.
//
// Layout: item parameters are *packed* cell-major — each cell's member
// rows ([V_i, b_i], dim+1 floats) sit contiguously, ids ascending within
// the cell. Probing a cell is then a dense streaming scan at the same
// cache behavior as the exact kernel in internal/score; the speedup over
// exact is almost exactly the fraction of the catalog pruned away.
type Index struct {
	dim    int // latent dimensionality d
	augDim int // d + 2: bias coordinate + norm-augmentation coordinate
	nlist  int
	nprobe int // default probe width; Search can override per query

	// centroids holds nlist rows of augDim coordinates, unit-norm (or
	// zero for a cell that only ever held quarantined items).
	centroids []float64

	// ids lists every item id exactly once, cell-major, ascending within
	// each cell; packed holds the matching [V_i..., b_i] rows (stride
	// dim+1). offsets[c]..offsets[c+1] is cell c's span in both. Exactly
	// one of packed/packed32 is non-nil: an index built from a float32
	// parameter set (mf.Factors32) packs float32 rows and scans them with
	// the mixed-precision kernel, halving the bytes each probe streams.
	ids      []int32
	packed   []float64
	packed32 []float32
	offsets  []int32

	numItems  int
	maxNorm   float64 // M: the largest augmented item norm
	nonFinite int     // items quarantined for non-finite parameters
}

// BuildIVF constructs the index: augment every item vector onto the
// common-norm sphere (folding the bias in), run seeded spherical k-means
// as the coarse quantizer, and pack items into cell-major inverted lists.
// The build is deterministic given (m, cfg) and never panics on
// degenerate input — non-finite rows, zero-norm items, duplicate vectors,
// and NLists > items are all handled (see augmentItems and kmeans).
//
// m may be any parameter representation. A float32 source (mf.Factors32)
// is packed as float32 rows: the clustering geometry is computed on the
// exactly-widened float64 values, so building from a quantized model and
// from its widened copy yields the same cells, and cell scans are
// bit-identical to dense float32 scoring.
func BuildIVF(m mf.Params, cfg Config) (*Index, error) {
	if m == nil {
		return nil, fmt.Errorf("retrieval: nil model")
	}
	n := m.NumItems()
	if n < 1 {
		return nil, fmt.Errorf("retrieval: model has no items")
	}
	cfg = cfg.withDefaults(n)
	d := m.Dim()
	aug, nonFinite, maxNorm := augmentItems(m)
	centroids, assign := kmeans(aug, n, d+2, cfg.NLists, cfg.Iters, mathx.NewRNG(cfg.Seed))
	nlist := len(centroids) / (d + 2)

	// Counting pass then a fill pass in ascending item id order, so each
	// cell's span ends up id-sorted without any per-cell sort.
	offsets := make([]int32, nlist+1)
	for _, c := range assign {
		offsets[c+1]++
	}
	for c := 0; c < nlist; c++ {
		offsets[c+1] += offsets[c]
	}
	stride := d + 1
	ids := make([]int32, n)
	var packed []float64
	var packed32 []float32
	f32src, isF32 := m.(*mf.Factors32)
	if isF32 {
		packed32 = make([]float32, n*stride)
	} else {
		packed = make([]float64, n*stride)
	}
	cursor := make([]int32, nlist)
	copy(cursor, offsets[:nlist])
	var vbuf []float64
	for i := 0; i < n; i++ {
		c := assign[i]
		slot := cursor[c]
		cursor[c]++
		ids[slot] = int32(i)
		if isF32 {
			_, v32, b32 := f32src.RawParams32()
			row := packed32[int(slot)*stride : int(slot)*stride+stride]
			copy(row[:d], v32[i*d:i*d+d])
			if b32 != nil {
				row[d] = b32[i]
			}
			continue
		}
		row := packed[int(slot)*stride : int(slot)*stride+stride]
		vf := m.ItemVector(int32(i), vbuf)
		vbuf = vf
		copy(row[:d], vf)
		row[d] = m.Bias(int32(i))
	}

	nprobe := cfg.NProbe
	if nprobe > nlist {
		nprobe = nlist
	}
	return &Index{
		dim: d, augDim: d + 2,
		nlist: nlist, nprobe: nprobe,
		centroids: centroids,
		ids:       ids, packed: packed, packed32: packed32, offsets: offsets,
		numItems: n, maxNorm: maxNorm, nonFinite: nonFinite,
	}, nil
}

// NLists returns the number of k-means cells actually built (≤ Config.
// NLists when the catalog is smaller than the requested cell count).
func (ix *Index) NLists() int { return ix.nlist }

// NProbe returns the default probe width.
func (ix *Index) NProbe() int { return ix.nprobe }

// NumItems returns the indexed catalog size.
func (ix *Index) NumItems() int { return ix.numItems }

// Dim returns the latent dimensionality the index was built for.
func (ix *Index) Dim() int { return ix.dim }

// NonFinite returns how many items were quarantined at build time for
// carrying NaN/Inf parameters. Such items still live in a cell (so the
// partition stays exhaustive) but their exact re-rank score is non-finite
// and Search drops them, exactly as the dense path does.
func (ix *Index) NonFinite() int { return ix.nonFinite }

// ProbeCells returns the indices of the nprobe cells whose centroids best
// match the query (<= 0 means the index default), in ascending cell
// order. The query is the raw user factor vector (d coordinates); the
// implicit augmented query is [uf, 1, 0], so only the first d+1 centroid
// coordinates participate. A NaN affinity (poisoned query) is ranked as
// -Inf — cells are never dropped, only ordered, so nprobe == nlist always
// probes everything and degenerates to exact retrieval whatever the query
// contains. The serve path calls this separately from SearchCells so the
// two phases land in distinct trace stages.
func (ix *Index) ProbeCells(uf []float64, nprobe int) []int32 {
	if nprobe <= 0 {
		nprobe = ix.nprobe
	}
	if nprobe > ix.nlist {
		nprobe = ix.nlist
	}
	d, D := ix.dim, ix.augDim
	h := rank.NewHeap(nprobe)
	for c := 0; c < ix.nlist; c++ {
		row := ix.centroids[c*D : c*D+D]
		a := mathx.Dot(uf, row[:d]) + row[d]
		if math.IsNaN(a) {
			a = math.Inf(-1)
		}
		h.Push(rank.Entry{Item: int32(c), Score: a})
	}
	top := h.Finish()
	cells := make([]int32, len(top))
	for i, e := range top {
		cells[i] = e.Item
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a] < cells[b] })
	return cells
}

// Probe returns the candidate item ids the query would re-rank at the
// given probe width (<= 0 means the index default), merged into one
// ascending id list. Search is the production path; Probe exists so tests
// can assert candidate-set invariants directly.
func (ix *Index) Probe(uf []float64, nprobe int) []int32 {
	cells := ix.ProbeCells(uf, nprobe)
	total := 0
	for _, c := range cells {
		total += int(ix.offsets[c+1] - ix.offsets[c])
	}
	cands := make([]int32, 0, total)
	for _, c := range cells {
		cands = append(cands, ix.ids[ix.offsets[c]:ix.offsets[c+1]]...)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	return cands
}

// Search returns the top k items for the query among the members of the
// nprobe best cells (nprobe <= 0 uses the index default), plus the count
// of candidates dropped for non-finite scores. Every candidate is scored
// with the same operations as the dense kernel — mathx.Dot over the item
// row plus the bias — so scores are bit-identical to exact retrieval;
// the only approximation is which items get scored at all. With
// nprobe == nlist the result (entries and dropped count) is bit-identical
// to rank.TopKDropped over engine.ScoreAll output.
//
// excludeSorted is an ascending list of item ids to skip (the caller's
// train positives; may be nil). Fewer than k entries come back when
// pruning or exclusion leaves fewer than k scoreable candidates — callers
// must treat k as a cap, not a promise.
func (ix *Index) Search(uf []float64, k, nprobe int, excludeSorted []int32) ([]rank.Entry, int) {
	return ix.SearchCells(uf, ix.ProbeCells(uf, nprobe), k, excludeSorted)
}

// SearchCells is the scoring half of Search: exactly re-rank the members
// of the given cells (a ProbeCells result) and return the top k. Splitting
// the phases lets the serve path time candidate selection ("probe") and
// scan-plus-select ("score") as separate trace stages.
func (ix *Index) SearchCells(uf []float64, cells []int32, k int, excludeSorted []int32) ([]rank.Entry, int) {
	if k <= 0 {
		return nil, 0 // mirror rank.TopKDropped: no selection, no counting
	}
	h := rank.NewHeap(k)
	dropped := 0
	d, stride := ix.dim, ix.dim+1
	ex, lp := excludeSorted, len(excludeSorted)
	// Floor-rejection fast path: once the heap is full, a candidate that
	// would not displace the root is dropped with a local comparison
	// instead of a Push call. The floor refreshes after every real push.
	full := false
	var floorScore float64
	var floorItem int32
	for _, c := range cells {
		lo, hi := int(ix.offsets[c]), int(ix.offsets[c+1])
		if lo == hi {
			continue
		}
		// Ids ascend within a cell, so one binary search positions a
		// merge pointer for the whole span.
		p := lp
		if lp > 0 {
			first := ix.ids[lo]
			p = sort.Search(lp, func(j int) bool { return ex[j] >= first })
		}
		for j := lo; j < hi; j++ {
			id := ix.ids[j]
			if p < lp {
				for p < lp && ex[p] < id {
					p++
				}
				if p < lp && ex[p] == id {
					continue
				}
			}
			off := j * stride
			// The branch is taken the same way for every candidate of a
			// query, so it predicts perfectly; both kernels accumulate in
			// float64 with the same operation order (see internal/mathx).
			var s float64
			if ix.packed32 != nil {
				row := ix.packed32[off : off+stride]
				s = mathx.DotF64F32(uf, row[:d]) + float64(row[d])
			} else {
				row := ix.packed[off : off+stride]
				s = mathx.Dot(uf, row[:d]) + row[d]
			}
			// Non-finite check strictly before floor rejection: a -Inf
			// score must count as dropped (as the dense path counts it),
			// not silently fail the floor comparison.
			if math.IsNaN(s) || math.IsInf(s, 0) {
				dropped++
				continue
			}
			if full && (s < floorScore || (s == floorScore && id > floorItem)) {
				continue
			}
			h.Push(rank.Entry{Item: id, Score: s})
			if r := h.Root(); full || h.Len() == k {
				floorScore, floorItem = r.Score, r.Item
				full = true
			}
		}
	}
	return h.Finish(), dropped
}

// augmentItems maps every item onto the common-norm sphere: row i is
// [V_i, b_i, √(M² − ‖V_i‖² − b_i²)] / M where M is the largest augmented
// norm, making every finite row unit-norm. Items with non-finite
// parameters are quarantined to the zero vector — they cluster
// deterministically (affinity 0 everywhere), stay in the partition, and
// are eliminated at re-rank time by their non-finite exact score. When
// every item is zero-norm (an untrained model) all rows become the same
// unit vector e_{d+1}, which k-means handles like any duplicate set.
func augmentItems(m mf.Params) (aug []float64, nonFinite int, maxNorm float64) {
	n, d := m.NumItems(), m.Dim()
	D := d + 2
	aug = make([]float64, n*D)
	norm2 := make([]float64, n)
	bad := make([]bool, n)
	var max2 float64
	var vbuf []float64
	for i := 0; i < n; i++ {
		b := m.Bias(int32(i))
		s := b * b
		ok := isFinite(b)
		vf := m.ItemVector(int32(i), vbuf)
		vbuf = vf
		for _, x := range vf {
			s += x * x
			ok = ok && isFinite(x)
		}
		if !ok || !isFinite(s) {
			bad[i] = true
			nonFinite++
			continue
		}
		norm2[i] = s
		if s > max2 {
			max2 = s
		}
	}
	maxNorm = math.Sqrt(max2)
	for i := 0; i < n; i++ {
		if bad[i] {
			continue // quarantined: the zero vector
		}
		row := aug[i*D : i*D+D]
		if maxNorm == 0 {
			row[D-1] = 1
			continue
		}
		vf := m.ItemVector(int32(i), vbuf)
		vbuf = vf
		for j, x := range vf {
			row[j] = x / maxNorm
		}
		row[d] = m.Bias(int32(i)) / maxNorm
		rem := 1 - norm2[i]/max2
		if rem < 0 {
			rem = 0 // guard float cancellation on the max-norm item itself
		}
		row[d+1] = math.Sqrt(rem)
	}
	return aug, nonFinite, maxNorm
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

package retrieval

import (
	"math"
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/rank"
	"clapf/internal/score"
)

// worldModel builds a model from a seeded datagen world's ground-truth
// factors plus a popularity-derived bias — realistic low-rank structure
// without paying for training. Tests measuring recall against exact
// retrieval all share it, so calibrated recall floors are reproducible.
func worldModel(tb testing.TB, scale float64, seed uint64) (*mf.Model, *datagen.World) {
	tb.Helper()
	prof, err := datagen.ProfileByName("ML100K")
	if err != nil {
		tb.Fatalf("ProfileByName: %v", err)
	}
	p := prof.Scaled(scale)
	w, err := datagen.Generate(p, mathx.NewRNG(seed))
	if err != nil {
		tb.Fatalf("Generate: %v", err)
	}
	b := make([]float64, p.Items)
	for i := range b {
		b[i] = 0.05 * math.Log(w.Popularity[i])
	}
	m, err := mf.FromRaw(mf.Config{
		NumUsers: p.Users, NumItems: p.Items, Dim: w.Dim, UseBias: true,
	}, w.TrueUser, w.TrueItem, b)
	if err != nil {
		tb.Fatalf("FromRaw: %v", err)
	}
	return m, w
}

// exactTop returns the dense-path top-k for user u: engine ScoreAll plus
// rank.TopKDropped with merge-pointer exclusion — byte for byte the serve
// path's exact branch.
func exactTop(eng *score.Engine, train *dataset.Dataset, u int32, k int) ([]rank.Entry, int) {
	scores := make([]float64, eng.Params().NumItems())
	eng.ScoreAll(u, scores)
	pos := train.Positives(u)
	idx := 0
	return rank.TopKDropped(scores, k, func(i int32) bool {
		for idx < len(pos) && pos[idx] < i {
			idx++
		}
		return idx < len(pos) && pos[idx] == i
	})
}

// meanRecall measures mean recall@k of the index against exact retrieval
// over every user, both sides excluding train positives.
func meanRecall(tb testing.TB, ix *Index, m *mf.Model, train *dataset.Dataset, k, nprobe int) float64 {
	tb.Helper()
	eng := score.NewEngine(m)
	var sum float64
	users := 0
	for u := int32(0); u < int32(m.NumUsers()); u++ {
		exact, _ := exactTop(eng, train, u, k)
		if len(exact) == 0 {
			continue
		}
		approx, _ := ix.Search(m.UserFactors(u), k, nprobe, train.Positives(u))
		set := make(map[int32]bool, len(exact))
		for _, e := range exact {
			set[e.Item] = true
		}
		hit := 0
		for _, e := range approx {
			if set[e.Item] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(exact))
		users++
	}
	if users == 0 {
		tb.Fatal("no users with a non-empty exact top-k")
	}
	return sum / float64(users)
}

// TestIVFSmoke is the check.sh gate: build an index over a seeded
// ground-truth world, query every user, and hold the calibrated recall
// floor. Config (nlist=32, nprobe=16) measures ≥ 0.957 across seeds at
// this scale; the floor leaves margin while still catching any real
// quantizer or probe-order regression.
func TestIVFSmoke(t *testing.T) {
	m, w := worldModel(t, 0.25, 7)
	ix, err := BuildIVF(m, Config{NLists: 32, NProbe: 16})
	if err != nil {
		t.Fatalf("BuildIVF: %v", err)
	}
	if got := meanRecall(t, ix, m, w.Data, 10, 0); got < 0.95 {
		t.Fatalf("recall@10 = %.4f, want >= 0.95", got)
	}
}

func TestBuildIVFDefaults(t *testing.T) {
	m, _ := worldModel(t, 0.25, 1)
	ix, err := BuildIVF(m, Config{})
	if err != nil {
		t.Fatalf("BuildIVF: %v", err)
	}
	n := m.NumItems()
	wantLists := int(math.Ceil(2 * math.Sqrt(float64(n))))
	if ix.NLists() != wantLists {
		t.Errorf("NLists = %d, want %d", ix.NLists(), wantLists)
	}
	if ix.NProbe() != (wantLists+3)/4 {
		t.Errorf("NProbe = %d, want %d", ix.NProbe(), (wantLists+3)/4)
	}
	if ix.NumItems() != n {
		t.Errorf("NumItems = %d, want %d", ix.NumItems(), n)
	}
	if ix.Dim() != m.Dim() {
		t.Errorf("Dim = %d, want %d", ix.Dim(), m.Dim())
	}
	if ix.NonFinite() != 0 {
		t.Errorf("NonFinite = %d on a clean model", ix.NonFinite())
	}
}

func TestBuildIVFErrors(t *testing.T) {
	if _, err := BuildIVF(nil, Config{}); err == nil {
		t.Error("nil model: want error")
	}
}

// TestBuildIVFDeterministic: same (model, config) twice must agree bit
// for bit — the property hot reload and response pinning rely on.
func TestBuildIVFDeterministic(t *testing.T) {
	m, w := worldModel(t, 0.25, 3)
	a, err := BuildIVF(m, Config{NLists: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildIVF(m, Config{NLists: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < int32(m.NumUsers()); u += 7 {
		uf := m.UserFactors(u)
		ta, da := a.Search(uf, 10, 0, w.Data.Positives(u))
		tb, db := b.Search(uf, 10, 0, w.Data.Positives(u))
		if da != db || len(ta) != len(tb) {
			t.Fatalf("user %d: builds disagree (%d/%d entries, %d/%d dropped)", u, len(ta), len(tb), da, db)
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("user %d entry %d: %+v vs %+v", u, i, ta[i], tb[i])
			}
		}
	}
}

// TestSearchShortCandidates: when pruning leaves fewer than k candidates
// the result is shorter than k, never padded or panicking.
func TestSearchShortCandidates(t *testing.T) {
	m, w := worldModel(t, 0.25, 1)
	ix, err := BuildIVF(m, Config{NLists: 64})
	if err != nil {
		t.Fatal(err)
	}
	uf := m.UserFactors(0)
	got, _ := ix.Search(uf, 10_000, 1, nil)
	cands := ix.Probe(uf, 1)
	if len(got) != len(cands) {
		t.Errorf("k over candidate count: got %d entries for %d candidates", len(got), len(cands))
	}
	if top, _ := ix.Search(uf, 0, 1, nil); len(top) != 0 {
		t.Errorf("k=0: got %d entries", len(top))
	}
	_ = w
}

// TestSearchExcludesAll: excluding the entire catalog must yield an empty
// list at any probe width.
func TestSearchExcludesAll(t *testing.T) {
	m, _ := worldModel(t, 0.25, 1)
	ix, err := BuildIVF(m, Config{NLists: 16})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int32, m.NumItems())
	for i := range all {
		all[i] = int32(i)
	}
	for _, nprobe := range []int{1, 4, 16} {
		if got, _ := ix.Search(m.UserFactors(1), 10, nprobe, all); len(got) != 0 {
			t.Errorf("nprobe %d: %d entries despite full exclusion", nprobe, len(got))
		}
	}
}

// TestSearchNaNQuery: a poisoned user vector produces NaN scores
// everywhere; the result must be empty with every candidate counted as
// dropped, and nothing may panic.
func TestSearchNaNQuery(t *testing.T) {
	m, _ := worldModel(t, 0.25, 1)
	ix, err := BuildIVF(m, Config{NLists: 16})
	if err != nil {
		t.Fatal(err)
	}
	uf := make([]float64, m.Dim())
	uf[0] = math.NaN()
	got, dropped := ix.Search(uf, 10, ix.NLists(), nil)
	if len(got) != 0 {
		t.Errorf("NaN query: got %d entries", len(got))
	}
	if dropped != m.NumItems() {
		t.Errorf("NaN query: dropped = %d, want %d", dropped, m.NumItems())
	}
}

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"exact", ModeExact, true},
		{"ivf", ModeIVF, true},
		{"", ModeExact, false},
		{"IVF", ModeExact, false},
		{"hnsw", ModeExact, false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if ModeExact.String() != "exact" || ModeIVF.String() != "ivf" {
		t.Errorf("String round-trip broken: %q %q", ModeExact, ModeIVF)
	}
	if s := Mode(99).String(); s != "Mode(99)" {
		t.Errorf("unknown mode String = %q", s)
	}
}

func TestConfigDefaultsClamp(t *testing.T) {
	c := Config{NLists: 100, NProbe: 50}.withDefaults(8)
	if c.NLists != 8 || c.NProbe != 8 {
		t.Errorf("clamp to catalog: got nlist=%d nprobe=%d, want 8/8", c.NLists, c.NProbe)
	}
	c = Config{}.withDefaults(1)
	if c.NLists != 1 || c.NProbe != 1 {
		t.Errorf("single item: got nlist=%d nprobe=%d, want 1/1", c.NLists, c.NProbe)
	}
	if c.Seed == 0 || c.Iters <= 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
}

// Package retrieval provides sublinear top-K maximum-inner-product
// retrieval over a trained model's item factors — the serve-path unlock
// for catalogs where exact scoring (O(items·dim) per request, see
// internal/score) is too slow.
//
// The construction has two layers:
//
//  1. A norm-augmented reduction from MIPS to cosine search. Every item's
//     score is f_ui = U_u·V_i + b_i, an inner product between the
//     (d+1)-vector [U_u, 1] and [V_i, b_i]. Appending one more coordinate
//     √(M² − ‖V_i‖² − b_i²), where M is the largest augmented item norm,
//     gives every item vector identical norm M — so the item maximizing
//     the inner product is exactly the item maximizing cosine similarity
//     against the query [U_u, 1, 0]. On the unit sphere (after dividing
//     by M) spherical k-means becomes a meaningful coarse quantizer for
//     the *scoring* geometry, bias included.
//
//  2. A cluster-pruned IVF (inverted-file) index over those unit
//     vectors: a seeded, deterministic spherical k-means partitions the
//     catalog into nlist cells; a query scans the nlist centroids, keeps
//     the top nprobe cells, and re-ranks every item in them with the
//     *exact* score U_u·V_i + b_i — identical operations to the dense
//     scoring kernel, so the only approximation is which items get
//     scored at all, never the scores themselves. With nprobe == nlist
//     the result is bit-identical to exact retrieval.
//
// Construction is NaN-safe (items carrying non-finite parameters are
// quarantined to the zero vector and — like every candidate — re-ranked
// with their exact score, which the rank layer then drops as
// non-finite) and bit-deterministic given a seed, which is what lets a
// hot reload rebuild the index reproducibly and lets tests pin exact
// outputs.
package retrieval

import (
	"fmt"
	"math"
)

// Mode selects the top-K retrieval strategy on the serve path.
type Mode int

const (
	// ModeExact scores every item per query — the dense blocked kernel
	// in internal/score. Always correct, O(items·dim) per query.
	ModeExact Mode = iota
	// ModeIVF prunes to the nprobe most promising k-means cells and
	// re-ranks their members exactly — sublinear per query, recall
	// measured against exact by internal/eval.
	ModeIVF
)

// String renders the mode the way the -retrieval flag spells it.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeIVF:
		return "ivf"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a -retrieval flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "exact":
		return ModeExact, nil
	case "ivf":
		return ModeIVF, nil
	}
	return ModeExact, fmt.Errorf("retrieval: unknown mode %q (want exact or ivf)", s)
}

// Config tunes IVF construction. The zero value of every field gets a
// sane default from withDefaults, so callers can set only what they care
// about.
type Config struct {
	// NLists is the number of k-means cells. Default ⌈2√items⌉: the
	// classic ⌈√items⌉ balances centroid scan against cell re-rank, but
	// the re-rank side costs dim flops per item versus one comparison
	// per centroid, so doubling the cell count buys measurably better
	// recall-per-candidate at negligible scan cost.
	NLists int
	// NProbe is how many cells a query visits. Default ⌈NLists/4⌉.
	// NProbe == NLists degenerates to exact retrieval.
	NProbe int
	// Seed drives k-means initialization. The build is bit-deterministic
	// given (model, Config): same seed, same index, same answers.
	// Default 1.
	Seed uint64
	// Iters bounds the k-means refinement sweeps (it stops early once an
	// assignment pass changes nothing). Default 12.
	Iters int
}

func (c Config) withDefaults(numItems int) Config {
	if c.NLists <= 0 {
		c.NLists = int(math.Ceil(2 * math.Sqrt(float64(numItems))))
	}
	if c.NLists > numItems {
		c.NLists = numItems
	}
	if c.NLists < 1 {
		c.NLists = 1
	}
	if c.NProbe <= 0 {
		c.NProbe = (c.NLists + 3) / 4
	}
	if c.NProbe > c.NLists {
		c.NProbe = c.NLists
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Iters <= 0 {
		c.Iters = 12
	}
	return c
}

package retrieval

import (
	"math"
	"sort"
	"testing"

	"clapf/internal/score"
)

// TestRecallGrid pins calibrated mean-recall@10 floors across a
// (nlist, nprobe) grid on seeded ground-truth worlds. Everything here is
// bit-deterministic — world, model, and index all derive from fixed seeds
// — so the floors are regression tripwires, not statistical hopes. The
// ≥ 0.95 rows are the headline configurations; the looser rows document
// how recall degrades as probing narrows, so a quantizer regression shows
// up across the whole curve, not just at one point.
func TestRecallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("recall grid is a long test")
	}
	type cfg struct {
		nlist, nprobe int
		floor         float64
	}
	cases := []struct {
		scale float64
		seed  uint64
		grid  []cfg
	}{
		{0.25, 7, []cfg{
			{16, 8, 0.90},
			{32, 16, 0.95},
			{64, 32, 0.95},
			{0, 0, 0.80}, // defaults: nlist=2√420=41, nprobe=11
		}},
		{1.0, 7, []cfg{
			{16, 8, 0.91},
			{32, 16, 0.95},
			{64, 32, 0.95},
			{83, 41, 0.95},
			{0, 0, 0.88}, // defaults: nlist=2√1682=83, nprobe=21
		}},
	}
	for _, c := range cases {
		m, w := worldModel(t, c.scale, c.seed)
		for _, g := range c.grid {
			ix, err := BuildIVF(m, Config{NLists: g.nlist, NProbe: g.nprobe})
			if err != nil {
				t.Fatalf("scale %.2f nlist %d: %v", c.scale, g.nlist, err)
			}
			got := meanRecall(t, ix, m, w.Data, 10, 0)
			if got < g.floor {
				t.Errorf("scale %.2f nlist %d nprobe %d: recall@10 = %.4f, want >= %.2f",
					c.scale, ix.NLists(), ix.NProbe(), got, g.floor)
			}
		}
	}
}

// TestFullProbeBitIdentical: with nprobe == nlist the index degenerates to
// exact retrieval — entries (ids AND float64 scores, compared with ==) and
// the dropped count must match the dense engine + rank.TopKDropped path
// exactly, for every user, including a model with poisoned rows.
func TestFullProbeBitIdentical(t *testing.T) {
	m, w := worldModel(t, 0.25, 11)
	// Poison a few items so the dropped-count bookkeeping is exercised,
	// not just the happy path.
	poison := []int32{3, 97, 211}
	for _, i := range poison {
		m.ItemFactors(i)[0] = poisonNaN()
	}
	for _, nlist := range []int{1, 16, 41} {
		ix, err := BuildIVF(m, Config{NLists: nlist})
		if err != nil {
			t.Fatal(err)
		}
		if ix.NonFinite() != len(poison) {
			t.Fatalf("nlist %d: NonFinite = %d, want %d", nlist, ix.NonFinite(), len(poison))
		}
		eng := score.NewEngine(m)
		for u := int32(0); u < int32(m.NumUsers()); u++ {
			exact, exDropped := exactTop(eng, w.Data, u, 10)
			approx, apDropped := ix.Search(m.UserFactors(u), 10, ix.NLists(), w.Data.Positives(u))
			if exDropped != apDropped {
				t.Fatalf("nlist %d user %d: dropped %d (exact) vs %d (ivf)", nlist, u, exDropped, apDropped)
			}
			if len(exact) != len(approx) {
				t.Fatalf("nlist %d user %d: %d entries (exact) vs %d (ivf)", nlist, u, len(exact), len(approx))
			}
			for i := range exact {
				if exact[i].Item != approx[i].Item || exact[i].Score != approx[i].Score {
					t.Fatalf("nlist %d user %d rank %d: exact %+v vs ivf %+v",
						nlist, u, i, exact[i], approx[i])
				}
			}
		}
	}
}

// TestProbeInvariants: every candidate list is sorted, duplicate-free, and
// in-range; widths are monotone (probing more cells never loses a
// candidate); and the full-width probe enumerates the entire catalog —
// the partition is exhaustive even with quarantined and duplicate items.
func TestProbeInvariants(t *testing.T) {
	m, _ := worldModel(t, 0.25, 5)
	// Degenerate content: a poisoned row and a run of duplicate vectors.
	m.ItemFactors(7)[3] = poisonInf()
	src := m.ItemFactors(100)
	for i := int32(101); i < 110; i++ {
		copy(m.ItemFactors(i), src)
	}
	ix, err := BuildIVF(m, Config{NLists: 32})
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumItems()
	for u := int32(0); u < 40; u++ {
		uf := m.UserFactors(u)
		var prev []int32
		for _, nprobe := range []int{1, 4, 16, 32} {
			cands := ix.Probe(uf, nprobe)
			seen := make(map[int32]bool, len(cands))
			for i, id := range cands {
				if id < 0 || int(id) >= n {
					t.Fatalf("user %d nprobe %d: candidate %d out of range [0,%d)", u, nprobe, id, n)
				}
				if seen[id] {
					t.Fatalf("user %d nprobe %d: duplicate candidate %d", u, nprobe, id)
				}
				seen[id] = true
				if i > 0 && cands[i-1] >= id {
					t.Fatalf("user %d nprobe %d: candidates not strictly ascending at %d", u, nprobe, i)
				}
			}
			for _, id := range prev {
				if !seen[id] {
					t.Fatalf("user %d nprobe %d: lost candidate %d held at a narrower width", u, nprobe, id)
				}
			}
			prev = cands
		}
		if len(prev) != n {
			t.Fatalf("user %d: full probe enumerates %d of %d items", u, len(prev), n)
		}
	}
}

// TestSearchNeverReturnsExcluded: across the whole grid, no returned item
// is ever a train positive (after merge exclusion) and every returned id
// is valid — the serving-correctness invariant from the issue.
func TestSearchNeverReturnsExcluded(t *testing.T) {
	m, w := worldModel(t, 0.25, 13)
	n := m.NumItems()
	for _, nlist := range []int{8, 32} {
		ix, err := BuildIVF(m, Config{NLists: nlist})
		if err != nil {
			t.Fatal(err)
		}
		for _, nprobe := range []int{1, nlist / 2, nlist} {
			for u := int32(0); u < int32(m.NumUsers()); u++ {
				pos := w.Data.Positives(u)
				top, _ := ix.Search(m.UserFactors(u), 10, nprobe, pos)
				for _, e := range top {
					if e.Item < 0 || int(e.Item) >= n {
						t.Fatalf("nlist %d nprobe %d user %d: invalid item %d", nlist, nprobe, u, e.Item)
					}
					at := sort.Search(len(pos), func(j int) bool { return pos[j] >= e.Item })
					if at < len(pos) && pos[at] == e.Item {
						t.Fatalf("nlist %d nprobe %d user %d: returned train positive %d", nlist, nprobe, u, e.Item)
					}
				}
			}
		}
	}
}

// TestSearchSubsetOfProbe: Search must only ever return items Probe
// yields at the same width — scoring cannot invent candidates.
func TestSearchSubsetOfProbe(t *testing.T) {
	m, _ := worldModel(t, 0.25, 17)
	ix, err := BuildIVF(m, Config{NLists: 32})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 25; u++ {
		uf := m.UserFactors(u)
		for _, nprobe := range []int{1, 5, 16} {
			cands := ix.Probe(uf, nprobe)
			in := make(map[int32]bool, len(cands))
			for _, id := range cands {
				in[id] = true
			}
			top, _ := ix.Search(uf, 10, nprobe, nil)
			for _, e := range top {
				if !in[e.Item] {
					t.Fatalf("user %d nprobe %d: Search returned %d outside the probe set", u, nprobe, e.Item)
				}
			}
		}
	}
}

func poisonNaN() float64 { return math.NaN() }
func poisonInf() float64 { return math.Inf(1) }

package retrieval

import (
	"math"

	"clapf/internal/mathx"
)

// kmeans runs seeded spherical k-means over n unit-norm rows of x
// (D coordinates each): centroids maximize the dot product with their
// members, assignments break ties toward the lower cell index, and empty
// cells are reseeded deterministically from the worst-served point. It
// returns the flat centroid matrix (k'×D, k' = min(k, n)) and each row's
// cell assignment.
//
// Determinism is a contract, not a nicety: the serve path rebuilds the
// index at every model swap, and hot-reload tests pin exact responses per
// generation — two builds from the same (x, seed) must agree bit for bit.
// Everything here iterates in fixed order and uses no map traversal.
func kmeans(x []float64, n, D, k, iters int, rng *mathx.RNG) (centroids []float64, assign []int32) {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	centroids = make([]float64, k*D)
	// Init: k distinct row indices from the seeded permutation. Duplicate
	// *vectors* are fine — identical centroids just split ties by index.
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		copy(centroids[c*D:c*D+D], x[perm[c]*D:perm[c]*D+D])
	}

	assign = make([]int32, n)
	affinity := make([]float64, n) // dot with the assigned centroid
	sums := make([]float64, k*D)
	counts := make([]int, k)

	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			xi := x[i*D : i*D+D]
			bestC, bestA := int32(0), math.Inf(-1)
			for c := 0; c < k; c++ {
				a := mathx.Dot(centroids[c*D:c*D+D], xi)
				if a > bestA { // strict >: ties keep the lower index
					bestA, bestC = a, int32(c)
				}
			}
			if it == 0 || assign[i] != bestC {
				changed = changed || it > 0
				assign[i] = bestC
			}
			affinity[i] = bestA
		}
		if it > 0 && !changed {
			break
		}

		for i := range sums {
			sums[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			row := x[i*D : i*D+D]
			s := sums[int(assign[i])*D : int(assign[i])*D+D]
			for j, v := range row {
				s[j] += v
			}
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Reseed the empty cell at the point its current centroid
				// serves worst; poisoning its recorded affinity keeps a
				// second empty cell from stealing the same point.
				w := worstServed(affinity)
				copy(centroids[c*D:c*D+D], x[w*D:w*D+D])
				affinity[w] = math.Inf(1)
				continue
			}
			row := centroids[c*D : c*D+D]
			inv := 1 / float64(counts[c])
			var norm2 float64
			for j := range row {
				v := sums[c*D+j] * inv
				row[j] = v
				norm2 += v * v
			}
			if norm2 > 0 {
				// Spherical step: project the mean back onto the sphere.
				inv = 1 / math.Sqrt(norm2)
				for j := range row {
					row[j] *= inv
				}
			}
			// norm2 == 0 (a cell of quarantined zero rows, or exactly
			// cancelling members): keep the zero mean — affinity 0 to
			// everything, deterministic.
		}
	}
	return centroids, assign
}

// worstServed returns the index of the minimum affinity, ties toward the
// lower index.
func worstServed(aff []float64) int {
	w, min := 0, math.Inf(1)
	for i, a := range aff {
		if a < min {
			min, w = a, i
		}
	}
	return w
}

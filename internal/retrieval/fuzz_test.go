package retrieval

import (
	"encoding/binary"
	"math"
	"testing"

	"clapf/internal/mf"
)

// FuzzIVFBuild throws adversarial factor matrices at index construction:
// the fuzzer controls item count, dimensionality, cell count, and a byte
// stream interpreted as float64 item parameters (so NaN, ±Inf, subnormals,
// zero rows, and duplicates all occur naturally). BuildIVF must never
// panic; whatever it builds must satisfy the structural invariants — an
// exhaustive partition, in-range sorted candidates, and a full-width
// Search that only ever drops the non-finite rows.
func FuzzIVFBuild(f *testing.F) {
	// Seed corpus: the interesting shapes called out in the issue.
	f.Add(5, 3, 2, encodeFloats(make([]float64, 5*4)))                                         // all-zero rows
	f.Add(4, 2, 9, encodeFloats([]float64{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3}))                // duplicates, k > items
	f.Add(3, 2, 1, encodeFloats([]float64{math.NaN(), 1, 2, math.Inf(1), 0.5, -0.5, 1, 1, 1})) // poisoned rows
	f.Add(1, 1, 1, encodeFloats([]float64{42, 42}))                                            // single item
	f.Add(8, 4, 3, []byte{})                                                                   // no bytes: zero params

	f.Fuzz(func(t *testing.T, numItems, dim, nlist int, raw []byte) {
		if numItems < 1 || numItems > 64 || dim < 1 || dim > 8 || nlist < -2 || nlist > 128 {
			return
		}
		params := decodeFloats(raw, numItems*(dim+1))
		v := params[:numItems*dim]
		b := params[numItems*dim:]
		m, err := mf.FromRaw(mf.Config{
			NumUsers: 2, NumItems: numItems, Dim: dim, UseBias: true,
		}, make([]float64, 2*dim), v, b)
		if err != nil {
			t.Fatalf("FromRaw: %v", err)
		}
		// A mildly interesting query vector; content is irrelevant to the
		// invariants below.
		copy(m.UserFactors(0), v[:dim])

		ix, err := BuildIVF(m, Config{NLists: nlist, Iters: 4})
		if err != nil {
			t.Fatalf("BuildIVF on valid shapes: %v", err)
		}
		if ix.NLists() < 1 || ix.NLists() > numItems {
			t.Fatalf("NLists = %d for %d items", ix.NLists(), numItems)
		}

		// Full-width probe must enumerate the catalog exactly once,
		// ascending, whatever the parameter values were.
		cands := ix.Probe(m.UserFactors(0), ix.NLists())
		if len(cands) != numItems {
			t.Fatalf("full probe: %d candidates for %d items", len(cands), numItems)
		}
		for i, id := range cands {
			if int(id) != i {
				t.Fatalf("full probe candidate %d = %d, want %d", i, id, i)
			}
		}

		// Count rows a dense scorer would drop for user 0, then check
		// Search agrees at full width.
		uf := m.UserFactors(0)
		wantDropped := 0
		for i := 0; i < numItems; i++ {
			s := 0.0
			for j := 0; j < dim; j++ {
				s += uf[j] * v[i*dim+j]
			}
			s += b[i]
			if math.IsNaN(s) || math.IsInf(s, 0) {
				wantDropped++
			}
		}
		top, dropped := ix.Search(uf, numItems, ix.NLists(), nil)
		if dropped != wantDropped {
			t.Fatalf("full-width Search dropped %d, dense scoring drops %d", dropped, wantDropped)
		}
		if len(top)+dropped != numItems {
			t.Fatalf("full-width Search returned %d entries + %d dropped for %d items", len(top), dropped, numItems)
		}
		for r, e := range top {
			if e.Item < 0 || int(e.Item) >= numItems {
				t.Fatalf("entry %d: invalid item %d", r, e.Item)
			}
			if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
				t.Fatalf("entry %d: non-finite score %v leaked through", r, e.Score)
			}
			if r > 0 && (top[r-1].Score < e.Score ||
				(top[r-1].Score == e.Score && top[r-1].Item >= e.Item)) {
				t.Fatalf("entries out of order at %d: %+v then %+v", r, top[r-1], e)
			}
		}
	})
}

func encodeFloats(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// decodeFloats reads n float64s from raw, zero-padding when raw is short —
// the fuzzer mutates lengths freely and every length must map to a valid
// parameter matrix.
func decodeFloats(raw []byte, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n && 8*i+8 <= len(raw); i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// Package rank provides ranked-list utilities: bounded top-k selection over
// score vectors and rank lookups, the building blocks of both the
// evaluation protocol (rank all unobserved items) and the rank-aware
// samplers.
package rank

import (
	"math"
	"sort"
)

// Entry pairs an item index with its score.
type Entry struct {
	Item  int32
	Score float64
}

// TopK returns the k highest-scoring item indices, best first, skipping
// items for which exclude returns true. Ties break toward the smaller item
// id so results are deterministic. exclude may be nil; it is called at
// most once per item, in increasing item order — callers filtering
// against a sorted id list can use a stateful merge pointer instead of a
// per-item binary search.
//
// Non-finite scores (NaN, ±Inf) are dropped: NaN violates the strict weak
// ordering the heap relies on — one poisoned comparison can silently
// corrupt the whole result — and an Inf score is always a diverged or
// bit-flipped parameter, never a ranking signal. Callers that need to
// observe how many were dropped use TopKDropped.
//
// It maintains a size-k min-heap over the scores, costing O(m log k) — the
// difference between feasible and infeasible when the protocol ranks every
// unobserved item for every test user.
func TopK(scores []float64, k int, exclude func(item int32) bool) []Entry {
	top, _ := TopKDropped(scores, k, exclude)
	return top
}

// TopKDropped is TopK plus the number of non-excluded items whose scores
// were dropped for being non-finite — the serve path counts and logs these
// (clapf_nonfinite_scores_total) so a corrupted model is visible instead
// of silently mis-ranking.
func TopKDropped(scores []float64, k int, exclude func(item int32) bool) ([]Entry, int) {
	if k <= 0 {
		return nil, 0
	}
	h := NewHeap(k)
	dropped := 0
	for i, sc := range scores {
		it := int32(i)
		if exclude != nil && exclude(it) {
			continue
		}
		if math.IsNaN(sc) || math.IsInf(sc, 0) {
			dropped++
			continue
		}
		h.Push(Entry{Item: it, Score: sc})
	}
	return h.Finish(), dropped
}

// TopKEntries selects the k best of the given entries under the same
// ordering as TopK (descending score, ties toward the smaller item id),
// dropping non-finite scores. Unlike TopK it takes an explicit candidate
// list rather than a dense score vector — the approximate-retrieval path
// ranks only the items surviving cluster pruning. When fewer than k
// finite candidates are supplied the result is shorter than k; callers
// must not assume a full list.
func TopKEntries(es []Entry, k int) []Entry {
	top, _ := TopKEntriesDropped(es, k)
	return top
}

// TopKEntriesDropped is TopKEntries plus the count of entries dropped for
// carrying a non-finite score. Because Heap selection depends only on the
// *set* of pushed entries (see Heap), feeding any permutation of the
// non-excluded items of a dense score vector — scores computed by the same
// operations — returns bit-identical results to TopKDropped over that
// vector.
func TopKEntriesDropped(es []Entry, k int) ([]Entry, int) {
	if k <= 0 {
		return nil, 0
	}
	h := NewHeap(k)
	dropped := 0
	for _, e := range es {
		if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
			dropped++
			continue
		}
		h.Push(e)
	}
	return h.Finish(), dropped
}

// Heap is the bounded min-heap behind every top-k selection in this
// package: it retains the k best entries pushed so far, evicting the
// current worst. The ordering is total — descending score, ties toward the
// smaller item id — so the retained set, and therefore Finish's output, is
// a pure function of the set of pushed entries, independent of push order.
// Sharing one implementation is what lets the dense (TopKDropped),
// candidate-list (TopKEntriesDropped), and streaming (IVF probe) paths
// guarantee identical selections for identical inputs.
//
// Pushing a NaN score corrupts the heap invariant (NaN breaks the total
// order); callers must drop non-finite scores first, as the TopK wrappers
// do.
type Heap struct {
	h []Entry
	k int
}

// NewHeap returns a heap retaining the k best pushed entries.
func NewHeap(k int) *Heap {
	if k < 0 {
		k = 0
	}
	return &Heap{h: make([]Entry, 0, k), k: k}
}

// less orders the min-heap by score; for equal scores the *larger* item
// id is "smaller" so it gets evicted first, keeping small ids.
func (t *Heap) less(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

// Push offers an entry; it is retained iff it ranks among the k best seen.
func (t *Heap) Push(e Entry) {
	h := t.h
	if t.k == 0 {
		return
	}
	if len(h) < t.k {
		t.h = append(h, e)
		t.siftUp(len(t.h) - 1)
		return
	}
	if t.less(h[0], e) {
		h[0] = e
		t.siftDown(0)
	}
}

func (t *Heap) siftUp(i int) {
	h := t.h
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (t *Heap) siftDown(i int) {
	h := t.h
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && t.less(h[l], h[s]) {
			s = l
		}
		if r < len(h) && t.less(h[r], h[s]) {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// Len returns how many entries are currently retained.
func (t *Heap) Len() int { return len(t.h) }

// Root returns the worst retained entry — the one the next successful
// Push would evict. It is only meaningful once Len() == k; hot loops use
// it to reject below-floor candidates with a local comparison instead of
// a Push call.
func (t *Heap) Root() Entry { return t.h[0] }

// Finish sorts the retained entries best-first (descending score, ties
// toward the smaller item id) and returns them. The heap must not be used
// afterwards.
func (t *Heap) Finish() []Entry {
	h := t.h
	sort.Slice(h, func(i, j int) bool {
		if h[i].Score != h[j].Score {
			return h[i].Score > h[j].Score
		}
		return h[i].Item < h[j].Item
	})
	return h
}

// Ranks returns, for each requested item, its 1-based rank within the score
// vector under descending-score order (rank 1 = highest score). Only the
// requested items' ranks are computed, in O(m · |items|) worst case but
// O(m) for the common single-item call.
func Ranks(scores []float64, items []int32) []int {
	out := make([]int, len(items))
	for idx, it := range items {
		s := scores[it]
		r := 1
		for j, sc := range scores {
			if sc > s || (sc == s && int32(j) < it) {
				r++
			}
		}
		out[idx] = r
	}
	return out
}

// Argsort returns item indices ordered by descending score, ties broken by
// ascending item id. It is the full-sort used by the samplers' rank-list
// refresh.
func Argsort(scores []float64) []int32 {
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return idx
}

// Reverse reverses xs in place.
func Reverse(xs []int32) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Package rank provides ranked-list utilities: bounded top-k selection over
// score vectors and rank lookups, the building blocks of both the
// evaluation protocol (rank all unobserved items) and the rank-aware
// samplers.
package rank

import (
	"math"
	"sort"
)

// Entry pairs an item index with its score.
type Entry struct {
	Item  int32
	Score float64
}

// TopK returns the k highest-scoring item indices, best first, skipping
// items for which exclude returns true. Ties break toward the smaller item
// id so results are deterministic. exclude may be nil; it is called at
// most once per item, in increasing item order — callers filtering
// against a sorted id list can use a stateful merge pointer instead of a
// per-item binary search.
//
// Non-finite scores (NaN, ±Inf) are dropped: NaN violates the strict weak
// ordering the heap relies on — one poisoned comparison can silently
// corrupt the whole result — and an Inf score is always a diverged or
// bit-flipped parameter, never a ranking signal. Callers that need to
// observe how many were dropped use TopKDropped.
//
// It maintains a size-k min-heap over the scores, costing O(m log k) — the
// difference between feasible and infeasible when the protocol ranks every
// unobserved item for every test user.
func TopK(scores []float64, k int, exclude func(item int32) bool) []Entry {
	top, _ := TopKDropped(scores, k, exclude)
	return top
}

// TopKDropped is TopK plus the number of non-excluded items whose scores
// were dropped for being non-finite — the serve path counts and logs these
// (clapf_nonfinite_scores_total) so a corrupted model is visible instead
// of silently mis-ranking.
func TopKDropped(scores []float64, k int, exclude func(item int32) bool) ([]Entry, int) {
	if k <= 0 {
		return nil, 0
	}
	h := make([]Entry, 0, k)
	less := func(a, b Entry) bool {
		// Min-heap by score; for equal scores the *larger* item id is
		// "smaller" so it gets evicted first, keeping small ids.
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Item > b.Item
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(h) && less(h[l], h[s]) {
				s = l
			}
			if r < len(h) && less(h[r], h[s]) {
				s = r
			}
			if s == i {
				return
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
	}
	dropped := 0
	for i, sc := range scores {
		it := int32(i)
		if exclude != nil && exclude(it) {
			continue
		}
		if math.IsNaN(sc) || math.IsInf(sc, 0) {
			dropped++
			continue
		}
		e := Entry{Item: it, Score: sc}
		if len(h) < k {
			h = append(h, e)
			siftUp(len(h) - 1)
			continue
		}
		if less(h[0], e) {
			h[0] = e
			siftDown(0)
		}
	}
	sort.Slice(h, func(i, j int) bool {
		if h[i].Score != h[j].Score {
			return h[i].Score > h[j].Score
		}
		return h[i].Item < h[j].Item
	})
	return h, dropped
}

// Ranks returns, for each requested item, its 1-based rank within the score
// vector under descending-score order (rank 1 = highest score). Only the
// requested items' ranks are computed, in O(m · |items|) worst case but
// O(m) for the common single-item call.
func Ranks(scores []float64, items []int32) []int {
	out := make([]int, len(items))
	for idx, it := range items {
		s := scores[it]
		r := 1
		for j, sc := range scores {
			if sc > s || (sc == s && int32(j) < it) {
				r++
			}
		}
		out[idx] = r
	}
	return out
}

// Argsort returns item indices ordered by descending score, ties broken by
// ascending item id. It is the full-sort used by the samplers' rank-list
// refresh.
func Argsort(scores []float64) []int32 {
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return idx
}

// Reverse reverses xs in place.
func Reverse(xs []int32) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

package rank

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"clapf/internal/mathx"
)

func TestTopKBasic(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.3}
	got := TopK(scores, 3, nil)
	want := []int32{1, 3, 2}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Item != want[i] {
			t.Errorf("TopK[%d] = %d, want %d", i, e.Item, want[i])
		}
		if e.Score != scores[e.Item] {
			t.Errorf("TopK[%d] score = %v", i, e.Score)
		}
	}
}

func TestTopKExclude(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7}
	got := TopK(scores, 2, func(i int32) bool { return i == 0 })
	if len(got) != 2 || got[0].Item != 1 || got[1].Item != 2 {
		t.Errorf("TopK with exclusion = %v", got)
	}
}

func TestTopKSmallerThanK(t *testing.T) {
	got := TopK([]float64{0.5, 0.2}, 10, nil)
	if len(got) != 2 {
		t.Errorf("len = %d, want all 2 items", len(got))
	}
	if TopK(nil, 3, nil) != nil && len(TopK(nil, 3, nil)) != 0 {
		t.Error("empty scores should give empty result")
	}
	if got := TopK([]float64{1}, 0, nil); len(got) != 0 {
		t.Error("k=0 should give empty result")
	}
}

func TestTopKTiesDeterministic(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	got := TopK(scores, 2, nil)
	if got[0].Item != 0 || got[1].Item != 1 {
		t.Errorf("ties should prefer small ids, got %v", got)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := mathx.NewRNG(1)
	f := func(n uint8, k uint8) bool {
		m := int(n%200) + 1
		kk := int(k%20) + 1
		scores := make([]float64, m)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		got := TopK(scores, kk, nil)
		ref := Argsort(scores)
		if kk > m {
			kk = m
		}
		if len(got) != kk {
			return false
		}
		for i := 0; i < kk; i++ {
			if got[i].Item != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TopK must survive models with non-finite parameters: NaN breaks the
// heap's strict weak ordering and ±Inf is never a real ranking signal, so
// both are dropped and counted rather than returned.
func TestTopKNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name        string
		scores      []float64
		k           int
		exclude     func(int32) bool
		wantItems   []int32
		wantDropped int
	}{
		{
			name:        "nan-in-the-middle",
			scores:      []float64{0.1, nan, 0.9, 0.5},
			k:           3,
			wantItems:   []int32{2, 3, 0},
			wantDropped: 1,
		},
		{
			name:        "nan-first-would-poison-heap-seed",
			scores:      []float64{nan, 0.2, 0.8},
			k:           2,
			wantItems:   []int32{2, 1},
			wantDropped: 1,
		},
		{
			name:        "plus-inf-dropped-not-ranked-first",
			scores:      []float64{inf, 0.3, 0.6},
			k:           2,
			wantItems:   []int32{2, 1},
			wantDropped: 1,
		},
		{
			name:        "minus-inf-dropped-not-padding-tail",
			scores:      []float64{-inf, 0.3, 0.6},
			k:           3,
			wantItems:   []int32{2, 1},
			wantDropped: 1,
		},
		{
			name:        "all-non-finite",
			scores:      []float64{nan, inf, -inf, nan},
			k:           2,
			wantItems:   nil,
			wantDropped: 4,
		},
		{
			name:        "excluded-non-finite-not-double-counted",
			scores:      []float64{nan, 0.5, nan, 0.7},
			k:           2,
			exclude:     func(i int32) bool { return i == 0 },
			wantItems:   []int32{3, 1},
			wantDropped: 1, // item 0 is excluded before the finiteness check
		},
		{
			name:        "all-tied-finite",
			scores:      []float64{0.4, 0.4, 0.4, 0.4, 0.4},
			k:           3,
			wantItems:   []int32{0, 1, 2},
			wantDropped: 0,
		},
		{
			name:        "tied-with-nan-neighbors",
			scores:      []float64{0.4, nan, 0.4, nan, 0.4},
			k:           2,
			wantItems:   []int32{0, 2},
			wantDropped: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, dropped := TopKDropped(tc.scores, tc.k, tc.exclude)
			if dropped != tc.wantDropped {
				t.Errorf("dropped = %d, want %d", dropped, tc.wantDropped)
			}
			if len(got) != len(tc.wantItems) {
				t.Fatalf("got %d entries (%v), want %d", len(got), got, len(tc.wantItems))
			}
			for i, e := range got {
				if e.Item != tc.wantItems[i] {
					t.Errorf("entry %d = item %d, want %d", i, e.Item, tc.wantItems[i])
				}
				if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
					t.Errorf("entry %d has non-finite score %v", i, e.Score)
				}
			}
			// The plain TopK wrapper agrees with the counting variant.
			plain := TopK(tc.scores, tc.k, tc.exclude)
			if len(plain) != len(got) {
				t.Errorf("TopK returned %d entries, TopKDropped %d", len(plain), len(got))
			}
		})
	}
}

func TestArgsortOrdering(t *testing.T) {
	scores := []float64{0.2, 0.8, 0.8, 0.1}
	got := Argsort(scores)
	want := []int32{1, 2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Argsort = %v, want %v", got, want)
			break
		}
	}
}

func TestArgsortIsPermutation(t *testing.T) {
	rng := mathx.NewRNG(2)
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	idx := Argsort(scores)
	seen := make([]bool, len(scores))
	for _, v := range idx {
		if seen[v] {
			t.Fatal("Argsort repeated an index")
		}
		seen[v] = true
	}
	if !sort.SliceIsSorted(idx, func(a, b int) bool {
		return scores[idx[a]] > scores[idx[b]]
	}) {
		t.Error("Argsort not descending")
	}
}

func TestRanks(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5}
	got := Ranks(scores, []int32{0, 1, 2})
	want := []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks = %v, want %v", got, want)
			break
		}
	}
}

func TestRanksTieBreaking(t *testing.T) {
	// Equal scores: the smaller id ranks first, consistent with TopK.
	scores := []float64{0.5, 0.5}
	got := Ranks(scores, []int32{0, 1})
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("tie ranks = %v, want [1 2]", got)
	}
}

func TestRanksConsistentWithArgsort(t *testing.T) {
	rng := mathx.NewRNG(3)
	scores := make([]float64, 50)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	order := Argsort(scores)
	items := make([]int32, len(scores))
	for i := range items {
		items[i] = int32(i)
	}
	ranks := Ranks(scores, items)
	for pos, it := range order {
		if ranks[it] != pos+1 {
			t.Fatalf("item %d: rank %d, Argsort position %d", it, ranks[it], pos+1)
		}
	}
}

func TestReverse(t *testing.T) {
	xs := []int32{1, 2, 3, 4}
	Reverse(xs)
	want := []int32{4, 3, 2, 1}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("Reverse = %v", xs)
			break
		}
	}
	single := []int32{7}
	Reverse(single)
	if single[0] != 7 {
		t.Error("Reverse broke singleton")
	}
}

func TestTopKEntriesShortCandidateList(t *testing.T) {
	es := []Entry{{Item: 4, Score: 1.5}, {Item: 2, Score: 3.0}}
	got := TopKEntries(es, 10)
	if len(got) != 2 {
		t.Fatalf("k over candidate count: got %d entries, want 2", len(got))
	}
	if got[0].Item != 2 || got[1].Item != 4 {
		t.Errorf("order = %v, want item 2 then 4", got)
	}
	if got := TopKEntries(nil, 5); len(got) != 0 {
		t.Errorf("empty candidates: got %d entries", len(got))
	}
	if got := TopKEntries(es, 0); len(got) != 0 {
		t.Errorf("k=0: got %d entries", len(got))
	}
}

func TestTopKEntriesDropsNonFinite(t *testing.T) {
	es := []Entry{
		{Item: 0, Score: math.NaN()},
		{Item: 1, Score: math.Inf(1)},
		{Item: 2, Score: math.Inf(-1)},
		{Item: 3, Score: 0.5},
	}
	got, dropped := TopKEntriesDropped(es, 4)
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
	if len(got) != 1 || got[0].Item != 3 {
		t.Errorf("got %v, want only item 3", got)
	}
}

// TestTopKEntriesOrderInvariant: the selection must be a pure function of
// the entry *set* — any permutation of the non-excluded items of a dense
// vector returns results identical to TopKDropped, including boundary
// ties. This is the property the IVF probe path (cell-major iteration
// order) relies on.
func TestTopKEntriesOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		scores := make([]float64, 40)
		es := make([]Entry, 0, len(scores))
		for i := range scores {
			// Coarse quantization forces score ties across items.
			scores[i] = math.Floor(rng.Float64()*8) / 4
			es = append(es, Entry{Item: int32(i), Score: scores[i]})
		}
		rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		k := 1 + rng.Intn(12)
		want, wantDropped := TopKDropped(scores, k, nil)
		got, gotDropped := TopKEntriesDropped(es, k)
		if gotDropped != wantDropped || len(got) != len(want) {
			t.Fatalf("trial %d: %d/%d entries, %d/%d dropped", trial, len(got), len(want), gotDropped, wantDropped)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestHeapZeroAndNegativeK(t *testing.T) {
	for _, k := range []int{0, -3} {
		h := NewHeap(k)
		h.Push(Entry{Item: 1, Score: 5})
		if h.Len() != 0 {
			t.Errorf("k=%d: Len = %d after push, want 0", k, h.Len())
		}
		if got := h.Finish(); len(got) != 0 {
			t.Errorf("k=%d: Finish returned %d entries", k, len(got))
		}
	}
}

func TestHeapRootTracksWorstRetained(t *testing.T) {
	h := NewHeap(3)
	for _, e := range []Entry{{0, 5}, {1, 1}, {2, 3}, {3, 4}, {4, 0}} {
		h.Push(e)
	}
	if r := h.Root(); r.Item != 2 || r.Score != 3 {
		t.Errorf("Root = %+v, want item 2 score 3", r)
	}
	got := h.Finish()
	want := []Entry{{0, 5}, {3, 4}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Finish len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

package rank

import (
	"sort"
	"testing"
	"testing/quick"

	"clapf/internal/mathx"
)

func TestTopKBasic(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.3}
	got := TopK(scores, 3, nil)
	want := []int32{1, 3, 2}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Item != want[i] {
			t.Errorf("TopK[%d] = %d, want %d", i, e.Item, want[i])
		}
		if e.Score != scores[e.Item] {
			t.Errorf("TopK[%d] score = %v", i, e.Score)
		}
	}
}

func TestTopKExclude(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7}
	got := TopK(scores, 2, func(i int32) bool { return i == 0 })
	if len(got) != 2 || got[0].Item != 1 || got[1].Item != 2 {
		t.Errorf("TopK with exclusion = %v", got)
	}
}

func TestTopKSmallerThanK(t *testing.T) {
	got := TopK([]float64{0.5, 0.2}, 10, nil)
	if len(got) != 2 {
		t.Errorf("len = %d, want all 2 items", len(got))
	}
	if TopK(nil, 3, nil) != nil && len(TopK(nil, 3, nil)) != 0 {
		t.Error("empty scores should give empty result")
	}
	if got := TopK([]float64{1}, 0, nil); len(got) != 0 {
		t.Error("k=0 should give empty result")
	}
}

func TestTopKTiesDeterministic(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	got := TopK(scores, 2, nil)
	if got[0].Item != 0 || got[1].Item != 1 {
		t.Errorf("ties should prefer small ids, got %v", got)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := mathx.NewRNG(1)
	f := func(n uint8, k uint8) bool {
		m := int(n%200) + 1
		kk := int(k%20) + 1
		scores := make([]float64, m)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		got := TopK(scores, kk, nil)
		ref := Argsort(scores)
		if kk > m {
			kk = m
		}
		if len(got) != kk {
			return false
		}
		for i := 0; i < kk; i++ {
			if got[i].Item != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgsortOrdering(t *testing.T) {
	scores := []float64{0.2, 0.8, 0.8, 0.1}
	got := Argsort(scores)
	want := []int32{1, 2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Argsort = %v, want %v", got, want)
			break
		}
	}
}

func TestArgsortIsPermutation(t *testing.T) {
	rng := mathx.NewRNG(2)
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	idx := Argsort(scores)
	seen := make([]bool, len(scores))
	for _, v := range idx {
		if seen[v] {
			t.Fatal("Argsort repeated an index")
		}
		seen[v] = true
	}
	if !sort.SliceIsSorted(idx, func(a, b int) bool {
		return scores[idx[a]] > scores[idx[b]]
	}) {
		t.Error("Argsort not descending")
	}
}

func TestRanks(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5}
	got := Ranks(scores, []int32{0, 1, 2})
	want := []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks = %v, want %v", got, want)
			break
		}
	}
}

func TestRanksTieBreaking(t *testing.T) {
	// Equal scores: the smaller id ranks first, consistent with TopK.
	scores := []float64{0.5, 0.5}
	got := Ranks(scores, []int32{0, 1})
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("tie ranks = %v, want [1 2]", got)
	}
}

func TestRanksConsistentWithArgsort(t *testing.T) {
	rng := mathx.NewRNG(3)
	scores := make([]float64, 50)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	order := Argsort(scores)
	items := make([]int32, len(scores))
	for i := range items {
		items[i] = int32(i)
	}
	ranks := Ranks(scores, items)
	for pos, it := range order {
		if ranks[it] != pos+1 {
			t.Fatalf("item %d: rank %d, Argsort position %d", it, ranks[it], pos+1)
		}
	}
}

func TestReverse(t *testing.T) {
	xs := []int32{1, 2, 3, 4}
	Reverse(xs)
	want := []int32{4, 3, 2, 1}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("Reverse = %v", xs)
			break
		}
	}
	single := []int32{7}
	Reverse(single)
	if single[0] != 7 {
		t.Error("Reverse broke singleton")
	}
}

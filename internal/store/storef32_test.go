package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"clapf/internal/mf"
)

func sampleF32(seed uint64, useBias bool) *mf.Factors32 {
	return mf.QuantizeF32(sampleModel(seed, useBias))
}

func f32Equal(a, b *mf.Factors32) bool {
	au, av, ab := a.RawParams32()
	bu, bv, bb := b.RawParams32()
	if a.NumUsers() != b.NumUsers() || a.NumItems() != b.NumItems() ||
		a.Dim() != b.Dim() || a.HasBias() != b.HasBias() {
		return false
	}
	eq := func(x, y []float32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(au, bu) && eq(av, bv) && eq(ab, bb)
}

// saveV3Bytes serializes f through SaveF32 into memory.
func saveV3Bytes(t *testing.T, f *mf.Factors32, meta *Meta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveF32(&buf, f, meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSaveF32Layout pins the v3 geometry: page-aligned section start, the
// promised section length, a file that ends exactly at sectionOff +
// sectionLen, and a header checksum that covers everything before it.
func TestSaveF32Layout(t *testing.T) {
	for _, useBias := range []bool{true, false} {
		f := sampleF32(3, useBias)
		raw := saveV3Bytes(t, f, sampleMeta())
		if got := binary.LittleEndian.Uint32(raw[8:]); got != VersionF32 {
			t.Fatalf("version = %d, want %d", got, VersionF32)
		}
		flags := binary.LittleEndian.Uint32(raw[12:])
		if flags&flagF32 == 0 {
			t.Error("flagF32 not set")
		}
		if (flags&flagBias != 0) != useBias {
			t.Errorf("flagBias = %v, want %v", flags&flagBias != 0, useBias)
		}
		sectionOff := binary.LittleEndian.Uint64(raw[40:])
		sectionLen := binary.LittleEndian.Uint64(raw[48:])
		if sectionOff%sectionAlign != 0 {
			t.Errorf("sectionOff %d not %d-aligned", sectionOff, sectionAlign)
		}
		u, v, bb := f.RawParams32()
		if want := 4 * uint64(len(u)+len(v)+len(bb)); sectionLen != want {
			t.Errorf("sectionLen = %d, want %d", sectionLen, want)
		}
		if uint64(len(raw)) != sectionOff+sectionLen {
			t.Errorf("file is %d bytes, want sectionOff+sectionLen = %d", len(raw), sectionOff+sectionLen)
		}
		if got := crc32.ChecksumIEEE(raw[sectionOff:]); got != binary.LittleEndian.Uint32(raw[56:]) {
			t.Error("section CRC does not cover the section bytes")
		}
	}
}

// TestV3StreamingLoad reads a v3 buffer through the ordinary Load path
// and expects the factors widened into a float64 model plus the meta
// trailer — v3 files are transparent to every v1/v2 consumer.
func TestV3StreamingLoad(t *testing.T) {
	f := sampleF32(4, true)
	meta := sampleMeta()
	raw := saveV3Bytes(t, f, meta)
	m, gotMeta, err := LoadWithMeta(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !metasEqual(meta, gotMeta) {
		t.Errorf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
	if !f32Equal(f, mf.QuantizeF32(m)) {
		t.Error("widened model does not re-quantize to the saved factors")
	}
	for u := int32(0); u < int32(f.NumUsers()); u++ {
		for i := int32(0); i < int32(f.NumItems()); i++ {
			if m.Score(u, i) == 0 && f.Score(u, i) != 0 {
				t.Fatalf("score(%d,%d) lost", u, i)
			}
		}
	}
}

// TestLoadMappedRoundTrip saves through SaveF32File, maps the file back,
// and checks factors, meta, Verify, and Close — then that streaming Load
// of the same file agrees with the mapped view elementwise.
func TestLoadMappedRoundTrip(t *testing.T) {
	for _, useBias := range []bool{true, false} {
		f := sampleF32(5, useBias)
		path := filepath.Join(t.TempDir(), "model.f32.clapf")
		if err := SaveF32File(path, f, sampleMeta()); err != nil {
			t.Fatal(err)
		}
		mm, err := LoadMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := mm.Verify(); err != nil {
			t.Fatalf("Verify on a clean file: %v", err)
		}
		if !f32Equal(f, mm.Factors()) {
			t.Error("mapped factors differ from saved factors")
		}
		if !metasEqual(sampleMeta(), mm.Meta()) {
			t.Errorf("mapped meta = %+v", mm.Meta())
		}
		m, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !f32Equal(mm.Factors(), mf.QuantizeF32(m)) {
			t.Error("streaming load disagrees with mapped load")
		}
		if err := mm.Close(); err != nil {
			t.Fatal(err)
		}
		if err := mm.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if err := mm.Verify(); err == nil {
			t.Error("Verify after Close should fail")
		}
	}
}

// TestLoadMappedRejects exercises every corruption class the mapped
// loader must refuse with a clean error — never a panic, never a mapping
// of garbage.
func TestLoadMappedRejects(t *testing.T) {
	f := sampleF32(6, true)
	good := saveV3Bytes(t, f, sampleMeta())
	dir := t.TempDir()
	write := func(name string, raw []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	reject := func(name string, raw []byte) {
		t.Helper()
		mm, err := LoadMapped(write(name, raw))
		if err == nil {
			mm.Close()
			t.Fatalf("%s: LoadMapped accepted a corrupt file", name)
		}
	}

	// Truncations at every structural boundary.
	sectionOff := binary.LittleEndian.Uint64(good[40:])
	for _, cut := range []int{0, 4, 12, 40, v3HeaderFixed - 1, int(sectionOff), len(good) - 1} {
		reject("trunc", good[:cut])
	}
	// Trailing garbage after the promised end.
	reject("trailing", append(append([]byte(nil), good...), 0xAB))
	// Flipped header byte (dims word) breaks the header CRC.
	bad := append([]byte(nil), good...)
	bad[17] ^= 0x01
	reject("hdrflip", bad)
	// Flipped section byte: the header parses, the mapping succeeds, but
	// Verify must catch it.
	bad = append([]byte(nil), good...)
	bad[len(bad)-3] ^= 0x01
	mm, err := LoadMapped(write("secflip", bad))
	if err != nil {
		t.Fatalf("section flip should map (header is intact): %v", err)
	}
	if err := mm.Verify(); err == nil {
		t.Error("Verify missed a flipped section byte")
	}
	mm.Close()
	// Misaligned (non-canonical) section offset with a recomputed header
	// CRC — internally consistent, geometrically wrong.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(bad[40:], sectionOff+8)
	metaLen := binary.LittleEndian.Uint32(bad[60:])
	hdrEnd := v3HeaderFixed + int(metaLen)
	binary.LittleEndian.PutUint32(bad[hdrEnd-4:], crc32.ChecksumIEEE(bad[:hdrEnd-4]))
	reject("misaligned", bad)
	// Version-2 file: mmap requires v3.
	var v2 bytes.Buffer
	if err := SaveWithMeta(&v2, sampleModel(6, true), sampleMeta()); err != nil {
		t.Fatal(err)
	}
	reject("v2", v2.Bytes())

	// The streaming loader must reject the same corruptions.
	for _, raw := range [][]byte{good[:len(good)-1], func() []byte {
		b := append([]byte(nil), good...)
		b[len(b)-3] ^= 0x01
		return b
	}()} {
		if _, _, err := LoadWithMeta(bytes.NewReader(raw)); err == nil {
			t.Error("streaming load accepted a corrupt v3 buffer")
		}
	}
}

// TestV1V2StillLoad pins backward compatibility: the pre-v3 formats keep
// loading byte-identically after the v3 dispatch was added.
func TestV1V2StillLoad(t *testing.T) {
	m := sampleModel(7, true)
	var v1, v2 bytes.Buffer
	if err := Save(&v1, m); err != nil {
		t.Fatal(err)
	}
	if err := SaveWithMeta(&v2, m, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes()} {
		got, _, err := LoadWithMeta(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !modelsEqual(m, got) {
			t.Errorf("%s: model changed through round trip", name)
		}
	}
}

// Package store persists trained factor models in a small versioned binary
// format with an integrity checksum, so a model trained by cmd/clapf-train
// can be reloaded for serving or later evaluation without retraining.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "CLAPFMF\x00"
//	version uint32
//	flags   uint32   bit 0: has item bias
//	users   uint64
//	items   uint64
//	dim     uint64
//	U       users·dim float64 bits
//	V       items·dim float64 bits
//	B       items float64 bits (only when bias flag set)
//	crc     uint32   CRC-32 (IEEE) of everything above
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"clapf/internal/mf"
)

var magic = [8]byte{'C', 'L', 'A', 'P', 'F', 'M', 'F', 0}

// Version is the current format version.
const Version uint32 = 1

const flagBias uint32 = 1

// Save writes the model to w.
func Save(w io.Writer, m *mf.Model) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if _, err := mw.Write(magic[:]); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}
	var flags uint32
	if m.HasBias() {
		flags |= flagBias
	}
	if err := writeU32(mw, Version); err != nil {
		return err
	}
	if err := writeU32(mw, flags); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(m.NumUsers()), uint64(m.NumItems()), uint64(m.Dim())} {
		if err := writeU64(mw, v); err != nil {
			return err
		}
	}
	u, v, b := m.RawParams()
	for _, block := range [][]float64{u, v, b} {
		if err := writeFloats(mw, block); err != nil {
			return err
		}
	}
	return writeU32(w, crc.Sum32())
}

// Load reads a model written by Save, verifying magic, version, and
// checksum.
func Load(r io.Reader) (*mf.Model, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var gotMagic [8]byte
	if _, err := io.ReadFull(tr, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("store: read magic: %w", err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("store: bad magic %q", gotMagic[:])
	}
	version, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("store: unsupported version %d (have %d)", version, Version)
	}
	flags, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	dims := make([]uint64, 3)
	for i := range dims {
		if dims[i], err = readU64(tr); err != nil {
			return nil, err
		}
	}
	const maxDim = 1 << 31
	if dims[0] == 0 || dims[1] == 0 || dims[2] == 0 ||
		dims[0] > maxDim || dims[1] > maxDim || dims[2] > 1<<20 {
		return nil, fmt.Errorf("store: implausible dimensions %v", dims)
	}
	if dims[0]*dims[2] > 1<<34 || dims[1]*dims[2] > 1<<34 {
		return nil, fmt.Errorf("store: parameter block too large: %v", dims)
	}
	numUsers, numItems, dim := int(dims[0]), int(dims[1]), int(dims[2])
	useBias := flags&flagBias != 0

	u, err := readFloats(tr, numUsers*dim)
	if err != nil {
		return nil, err
	}
	v, err := readFloats(tr, numItems*dim)
	if err != nil {
		return nil, err
	}
	var b []float64
	if useBias {
		if b, err = readFloats(tr, numItems); err != nil {
			return nil, err
		}
	}
	wantSum := crc.Sum32()
	gotSum, err := readU32(r)
	if err != nil {
		return nil, fmt.Errorf("store: read checksum: %w", err)
	}
	if gotSum != wantSum {
		return nil, fmt.Errorf("store: checksum mismatch: file %08x, computed %08x", gotSum, wantSum)
	}
	return mf.FromRaw(mf.Config{
		NumUsers: numUsers,
		NumItems: numItems,
		Dim:      dim,
		UseBias:  useBias,
	}, u, v, b)
}

// SaveFile writes the model to path atomically (write to a temp file in the
// same directory, then rename).
func SaveFile(path string, m *mf.Model) error {
	tmp, err := os.CreateTemp(dirOf(path), ".clapf-model-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := Save(bw, m); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*mf.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeFloats(w io.Writer, xs []float64) error {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readFloats(r io.Reader, n int) ([]float64, error) {
	raw := make([]byte, 8*n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("store: read %d floats: %w", n, err)
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return xs, nil
}

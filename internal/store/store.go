// Package store persists trained factor models in a small versioned binary
// format with an integrity checksum, so a model trained by cmd/clapf-train
// can be reloaded for serving or later evaluation without retraining.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "CLAPFMF\x00"
//	version uint32
//	flags   uint32   bit 0: has item bias
//	users   uint64
//	items   uint64
//	dim     uint64
//	U       users·dim float64 bits
//	V       items·dim float64 bits
//	B       items float64 bits (only when bias flag set)
//	meta    uint32 length + JSON bytes (version >= 2 only)
//	crc     uint32   CRC-32 (IEEE) of everything above
//
// Version 1 files carry only the parameters; version 2 appends a metadata
// trailer (training step, RNG state, hyper-parameters, train-data
// fingerprint) that makes a file a resumable training checkpoint. Both
// versions remain loadable. Plain Save still emits version 1 so model
// files consumed by older tooling are byte-identical; SaveWithMeta emits
// version 2.
//
// Version 3 (storef32.go) is the serving-side export format: a
// page-aligned, little-endian float32 flat section with split header and
// section checksums, written by SaveF32/SaveF32File and readable either
// through the ordinary streaming loaders (widened to float64) or
// zero-copy via LoadMapped (mapped.go).
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"clapf/internal/mf"
)

var magic = [8]byte{'C', 'L', 'A', 'P', 'F', 'M', 'F', 0}

// Version is the current float64 streaming format version (v3, the
// float32 flat format, is VersionF32 in storef32.go).
const Version uint32 = 2

const flagBias uint32 = 1

// maxMetaLen bounds the metadata trailer so a corrupt length field cannot
// drive a huge allocation before the checksum is verified.
const maxMetaLen = 1 << 20

// Meta is the version-2 metadata trailer: everything beyond the raw
// parameters that a resumable checkpoint needs. All fields are optional;
// the zero value is a valid (empty) trailer.
type Meta struct {
	// Epoch and Step locate the checkpoint in the training schedule
	// (Step counts SGD updates; Epoch is Step in epoch-equivalents).
	Epoch int `json:"epoch,omitempty"`
	Step  int `json:"step,omitempty"`
	// TotalSteps is the configured step budget of the interrupted run.
	TotalSteps int `json:"total_steps,omitempty"`
	// RNG and SamplerRNG are xoshiro256** state words (4 each) of the
	// trainer's and triple sampler's generators.
	RNG        []uint64 `json:"rng,omitempty"`
	SamplerRNG []uint64 `json:"sampler_rng,omitempty"`
	// SamplerSteps preserves the sampler's refresh schedule position.
	SamplerSteps int `json:"sampler_steps,omitempty"`
	// LossEWMA and LossN restore the smoothed-loss accumulator so the
	// telemetry curve is continuous across a resume.
	LossEWMA float64 `json:"loss_ewma,omitempty"`
	LossN    int     `json:"loss_n,omitempty"`
	// DataFingerprint is dataset.Fingerprint() of the training split; a
	// resume against different data is refused.
	DataFingerprint uint64 `json:"data_fingerprint,omitempty"`
	// Hyper records the run's hyper-parameters as printable strings so a
	// resume can verify it continues the same optimization problem.
	Hyper map[string]string `json:"hyper,omitempty"`
	// Workers holds per-worker RNG streams for parallel (Hogwild) training
	// checkpoints; empty for serial runs. A resume must be configured with
	// the same worker count.
	Workers []WorkerMeta `json:"workers,omitempty"`
	// SinceRefresh preserves the parallel trainer's position in the
	// rank-list rebuild cadence.
	SinceRefresh int `json:"since_refresh,omitempty"`
	// FeedbackSeq is the streaming-ingest watermark: the last feedback
	// WAL sequence number whose fold-in update is baked into the user
	// factors of this file. On startup the serving stack replays only WAL
	// events beyond it, so a crash between a promotion export and the
	// promote step recovers to exactly the factors an uninterrupted run
	// would hold. Zero means no feedback is incorporated.
	FeedbackSeq uint64 `json:"feedback_seq,omitempty"`
}

// WorkerMeta is one Hogwild worker's resumable state inside a parallel
// training checkpoint.
type WorkerMeta struct {
	// RNG is the worker's record-selection generator (4 xoshiro256**
	// state words).
	RNG []uint64 `json:"rng"`
	// SamplerRNG and SamplerSteps are the worker's sampler-view state.
	SamplerRNG   []uint64 `json:"sampler_rng"`
	SamplerSteps int      `json:"sampler_steps"`
}

// Save writes the model to w in version-1 format (no metadata trailer).
func Save(w io.Writer, m *mf.Model) error {
	return save(w, m, nil)
}

// SaveWithMeta writes the model and metadata trailer to w in version-2
// format.
func SaveWithMeta(w io.Writer, m *mf.Model, meta *Meta) error {
	if meta == nil {
		meta = &Meta{}
	}
	return save(w, m, meta)
}

func save(w io.Writer, m *mf.Model, meta *Meta) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if _, err := mw.Write(magic[:]); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}
	var flags uint32
	if m.HasBias() {
		flags |= flagBias
	}
	version := uint32(1)
	if meta != nil {
		version = 2
	}
	if err := writeU32(mw, version); err != nil {
		return err
	}
	if err := writeU32(mw, flags); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(m.NumUsers()), uint64(m.NumItems()), uint64(m.Dim())} {
		if err := writeU64(mw, v); err != nil {
			return err
		}
	}
	u, v, b := m.RawParams()
	for _, block := range [][]float64{u, v, b} {
		if err := writeFloats(mw, block); err != nil {
			return err
		}
	}
	if meta != nil {
		buf, err := json.Marshal(meta)
		if err != nil {
			return fmt.Errorf("store: encode meta: %w", err)
		}
		if len(buf) > maxMetaLen {
			return fmt.Errorf("store: meta trailer is %d bytes, limit %d", len(buf), maxMetaLen)
		}
		if err := writeU32(mw, uint32(len(buf))); err != nil {
			return err
		}
		if _, err := mw.Write(buf); err != nil {
			return fmt.Errorf("store: write meta: %w", err)
		}
	}
	return writeU32(w, crc.Sum32())
}

// Load reads a model written by Save or SaveWithMeta, verifying magic,
// version, and checksum. Any metadata trailer is discarded; use
// LoadWithMeta to keep it.
func Load(r io.Reader) (*mf.Model, error) {
	m, _, err := LoadWithMeta(r)
	return m, err
}

// LoadWithMeta reads a model and its metadata trailer. For version-1 files
// the returned Meta is nil.
func LoadWithMeta(r io.Reader) (*mf.Model, *Meta, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var gotMagic [8]byte
	if _, err := io.ReadFull(tr, gotMagic[:]); err != nil {
		return nil, nil, fmt.Errorf("store: read magic: %w", err)
	}
	if gotMagic != magic {
		return nil, nil, fmt.Errorf("store: bad magic %q", gotMagic[:])
	}
	version, err := readU32(tr)
	if err != nil {
		return nil, nil, err
	}
	if version < 1 || version > VersionF32 {
		return nil, nil, fmt.Errorf("store: unsupported version %d (have %d)", version, VersionF32)
	}
	flags, err := readU32(tr)
	if err != nil {
		return nil, nil, err
	}
	dims := make([]uint64, 3)
	for i := range dims {
		if dims[i], err = readU64(tr); err != nil {
			return nil, nil, err
		}
	}
	if err := validateDims(dims); err != nil {
		return nil, nil, err
	}
	if version == VersionF32 {
		// The float32 flat layout diverges after the dims words; its
		// loader widens the factors into a float64 Model so every
		// existing consumer reads v3 files transparently.
		return loadV3Stream(tr, crc, r, flags, dims)
	}
	numUsers, numItems, dim := int(dims[0]), int(dims[1]), int(dims[2])
	useBias := flags&flagBias != 0

	u, err := readFloats(tr, numUsers*dim)
	if err != nil {
		return nil, nil, err
	}
	v, err := readFloats(tr, numItems*dim)
	if err != nil {
		return nil, nil, err
	}
	var b []float64
	if useBias {
		if b, err = readFloats(tr, numItems); err != nil {
			return nil, nil, err
		}
	}
	var metaRaw []byte
	if version >= 2 {
		metaLen, err := readU32(tr)
		if err != nil {
			return nil, nil, fmt.Errorf("store: read meta length: %w", err)
		}
		if metaLen > maxMetaLen {
			return nil, nil, fmt.Errorf("store: meta trailer length %d exceeds limit %d", metaLen, maxMetaLen)
		}
		metaRaw = make([]byte, metaLen)
		if _, err := io.ReadFull(tr, metaRaw); err != nil {
			return nil, nil, fmt.Errorf("store: read meta: %w", err)
		}
	}
	wantSum := crc.Sum32()
	gotSum, err := readU32(r)
	if err != nil {
		return nil, nil, fmt.Errorf("store: read checksum: %w", err)
	}
	if gotSum != wantSum {
		return nil, nil, fmt.Errorf("store: checksum mismatch: file %08x, computed %08x", gotSum, wantSum)
	}
	m, err := mf.FromRaw(mf.Config{
		NumUsers: numUsers,
		NumItems: numItems,
		Dim:      dim,
		UseBias:  useBias,
	}, u, v, b)
	if err != nil {
		return nil, nil, err
	}
	var meta *Meta
	if version >= 2 {
		// Decode only after the checksum has vouched for the bytes, so a
		// torn trailer surfaces as a checksum error, not a JSON one.
		meta = &Meta{}
		if err := json.Unmarshal(metaRaw, meta); err != nil {
			return nil, nil, fmt.Errorf("store: decode meta: %w", err)
		}
	}
	return m, meta, nil
}

// SaveFile writes the model to path atomically and durably: the bytes go
// to a temp file in the same directory, the temp file is fsynced before
// the rename, and the parent directory is fsynced after it — so after
// SaveFile returns, a power failure leaves either the old file or the
// complete new one, never a torn or vanished model.
func SaveFile(path string, m *mf.Model) error {
	return saveFile(path, m, nil)
}

// SaveFileWithMeta is SaveFile for version-2 checkpoints.
func SaveFileWithMeta(path string, m *mf.Model, meta *Meta) error {
	if meta == nil {
		meta = &Meta{}
	}
	return saveFile(path, m, meta)
}

func saveFile(path string, m *mf.Model, meta *Meta) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".clapf-model-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := save(bw, m, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Filesystems that do not support fsync on directories report that as a
// non-error here: the rename itself already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*mf.Model, error) {
	m, _, err := LoadFileWithMeta(path)
	return m, err
}

// LoadFileWithMeta reads a model and its metadata trailer from path.
func LoadFileWithMeta(path string) (*mf.Model, *Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return LoadWithMeta(bufio.NewReader(f))
}

// validateDims rejects dimension words no real model could have written,
// so a corrupt header cannot drive a huge allocation before any checksum
// is verified.
func validateDims(dims []uint64) error {
	const maxDim = 1 << 31
	if dims[0] == 0 || dims[1] == 0 || dims[2] == 0 ||
		dims[0] > maxDim || dims[1] > maxDim || dims[2] > 1<<20 {
		return fmt.Errorf("store: implausible dimensions %v", dims)
	}
	if dims[0]*dims[2] > 1<<34 || dims[1]*dims[2] > 1<<34 {
		return fmt.Errorf("store: parameter block too large: %v", dims)
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeFloats(w io.Writer, xs []float64) error {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readFloats(r io.Reader, n int) ([]float64, error) {
	raw := make([]byte, 8*n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("store: read %d floats: %w", n, err)
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return xs, nil
}

//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and returns the mapping plus its
// release function. The mapping shares the page cache with the file, so a
// cold load touches no factor bytes until they are scored (or verified).
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

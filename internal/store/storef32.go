package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"clapf/internal/mf"
)

// Format version 3: the mmap-friendly float32 flat layout.
//
//	magic      [8]byte  "CLAPFMF\x00"
//	version    uint32   3
//	flags      uint32   bit 0: has item bias; bit 1: float32 section (required)
//	users      uint64
//	items      uint64
//	dim        uint64
//	sectionOff uint64   file offset of the factor section (sectionAlign-aligned)
//	sectionLen uint64   4·(users·dim + items·dim [+ items]) bytes
//	sectionCRC uint32   CRC-32 (IEEE) of the factor section bytes
//	metaLen    uint32 + meta JSON bytes
//	headerCRC  uint32   CRC-32 (IEEE) of every byte above
//	padding    zero bytes up to sectionOff
//	section    U, V, B as little-endian float32, flat, in that order
//
// The file ends exactly at sectionOff+sectionLen. Unlike v1/v2, whose
// single trailing CRC forces a full sequential parse, v3 splits integrity
// in two: headerCRC vouches for the geometry with a few hundred bytes of
// reads, and sectionCRC covers the factor payload separately so a mapped
// loader can defer (or batch) that scan. The section is page-aligned in
// the file, so mapping the file at offset 0 lands the factors on an
// alignment that permits casting the mapped bytes directly to []float32.
const VersionF32 uint32 = 3

// flagF32 marks the parameter section as float32. Required in v3.
const flagF32 uint32 = 2

// sectionAlign is the in-file alignment of the factor section. 4096
// matches the page size of every platform this repository targets, so the
// mapped section starts on a page (and in particular on a float32)
// boundary regardless of where in the header the metadata ends.
const sectionAlign = 4096

// v3HeaderFixed is the byte size of the v3 header without the variable
// meta payload: magic(8) + version(4) + flags(4) + dims(24) +
// sectionOff(8) + sectionLen(8) + sectionCRC(4) + metaLen(4) +
// headerCRC(4).
const v3HeaderFixed = 68

// SaveF32 writes a float32 parameter set to w in version-3 format. Most
// callers want SaveF32File: the format's alignment only buys anything on a
// real file, and the atomic rename path is how exports reach serving.
func SaveF32(w io.Writer, f *mf.Factors32, meta *Meta) error {
	if meta == nil {
		meta = &Meta{}
	}
	metaRaw, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: encode meta: %w", err)
	}
	if len(metaRaw) > maxMetaLen {
		return fmt.Errorf("store: meta trailer is %d bytes, limit %d", len(metaRaw), maxMetaLen)
	}

	u, v, b := f.RawParams32()
	sectionLen := 4 * uint64(len(u)+len(v)+len(b))
	headerEnd := uint64(v3HeaderFixed + len(metaRaw))
	sectionOff := (headerEnd + sectionAlign - 1) / sectionAlign * sectionAlign

	// The section CRC sits in the header, before the section itself, so
	// the payload is streamed twice: once through the checksum, once to w.
	// Export is not a hot path; keeping the writer single-pass means
	// SaveF32 works against any io.Writer, not just a seekable file.
	secCRC := crc32.NewIEEE()
	for _, block := range [][]float32{u, v, b} {
		if err := writeFloats32(secCRC, block); err != nil {
			return err
		}
	}

	hdrCRC := crc32.NewIEEE()
	mw := io.MultiWriter(w, hdrCRC)
	if _, err := mw.Write(magic[:]); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}
	flags := flagF32
	if f.HasBias() {
		flags |= flagBias
	}
	if err := writeU32(mw, VersionF32); err != nil {
		return err
	}
	if err := writeU32(mw, flags); err != nil {
		return err
	}
	for _, x := range []uint64{uint64(f.NumUsers()), uint64(f.NumItems()), uint64(f.Dim()),
		sectionOff, sectionLen} {
		if err := writeU64(mw, x); err != nil {
			return err
		}
	}
	if err := writeU32(mw, secCRC.Sum32()); err != nil {
		return err
	}
	if err := writeU32(mw, uint32(len(metaRaw))); err != nil {
		return err
	}
	if _, err := mw.Write(metaRaw); err != nil {
		return fmt.Errorf("store: write meta: %w", err)
	}
	if err := writeU32(w, hdrCRC.Sum32()); err != nil {
		return err
	}
	if pad := sectionOff - headerEnd; pad > 0 {
		if _, err := w.Write(make([]byte, pad)); err != nil {
			return fmt.Errorf("store: write padding: %w", err)
		}
	}
	for _, block := range [][]float32{u, v, b} {
		if err := writeFloats32(w, block); err != nil {
			return err
		}
	}
	return nil
}

// SaveF32File writes a float32 parameter set to path in version-3 format
// with the same atomic, durable temp-file + fsync + rename discipline as
// SaveFile.
func SaveF32File(path string, f *mf.Factors32, meta *Meta) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".clapf-model-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := SaveF32(bw, f, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// v3Header is the parsed and validated v3 geometry.
type v3Header struct {
	cfg        mf.Config
	sectionOff uint64
	sectionLen uint64
	sectionCRC uint32
	metaRaw    []byte
	nu, nv, nb int // element counts of the U, V, B blocks
}

// readV3Rest parses a v3 header from the point just after the dims words:
// tr must tee into crcAcc (which already digested magic through dims), and
// raw is the underlying reader the headerCRC word is read from without
// entering the accumulator. Validation rejects any geometry the format
// cannot have produced — wrong flag, misaligned or non-canonical section
// offset, section length that disagrees with the dims — before a single
// factor byte is read.
func readV3Rest(tr io.Reader, crcAcc hash.Hash32, raw io.Reader, flags uint32, dims []uint64) (*v3Header, error) {
	var h v3Header
	var err error
	if h.sectionOff, err = readU64(tr); err != nil {
		return nil, err
	}
	if h.sectionLen, err = readU64(tr); err != nil {
		return nil, err
	}
	if h.sectionCRC, err = readU32(tr); err != nil {
		return nil, err
	}
	metaLen, err := readU32(tr)
	if err != nil {
		return nil, fmt.Errorf("store: read meta length: %w", err)
	}
	if metaLen > maxMetaLen {
		return nil, fmt.Errorf("store: meta trailer length %d exceeds limit %d", metaLen, maxMetaLen)
	}
	h.metaRaw = make([]byte, metaLen)
	if _, err := io.ReadFull(tr, h.metaRaw); err != nil {
		return nil, fmt.Errorf("store: read meta: %w", err)
	}
	wantSum := crcAcc.Sum32()
	gotSum, err := readU32(raw)
	if err != nil {
		return nil, fmt.Errorf("store: read header checksum: %w", err)
	}
	if gotSum != wantSum {
		return nil, fmt.Errorf("store: header checksum mismatch: file %08x, computed %08x", gotSum, wantSum)
	}

	if flags&flagF32 == 0 {
		return nil, fmt.Errorf("store: version-3 file without float32 section flag")
	}
	h.cfg = mf.Config{
		NumUsers: int(dims[0]),
		NumItems: int(dims[1]),
		Dim:      int(dims[2]),
		UseBias:  flags&flagBias != 0,
	}
	h.nu = h.cfg.NumUsers * h.cfg.Dim
	h.nv = h.cfg.NumItems * h.cfg.Dim
	if h.cfg.UseBias {
		h.nb = h.cfg.NumItems
	}
	headerEnd := uint64(v3HeaderFixed) + uint64(metaLen)
	wantOff := (headerEnd + sectionAlign - 1) / sectionAlign * sectionAlign
	if h.sectionOff != wantOff {
		return nil, fmt.Errorf("store: section offset %d, want %d (aligned to %d)", h.sectionOff, wantOff, sectionAlign)
	}
	if want := 4 * uint64(h.nu+h.nv+h.nb); h.sectionLen != want {
		return nil, fmt.Errorf("store: section length %d disagrees with dims (want %d)", h.sectionLen, want)
	}
	return &h, nil
}

// decodeMeta unmarshals a header-CRC-vouched meta payload.
func (h *v3Header) decodeMeta() (*Meta, error) {
	meta := &Meta{}
	if err := json.Unmarshal(h.metaRaw, meta); err != nil {
		return nil, fmt.Errorf("store: decode meta: %w", err)
	}
	return meta, nil
}

// loadV3Stream is the sequential-reader v3 path of LoadWithMeta: skip the
// padding, stream the section through its checksum, and widen the factors
// into a float64 Model so every v1/v2 consumer (training resume, plain
// serving, eval) reads v3 files transparently. The zero-copy path is
// LoadMapped.
func loadV3Stream(tr io.Reader, crcAcc hash.Hash32, raw io.Reader, flags uint32, dims []uint64) (*mf.Model, *Meta, error) {
	h, err := readV3Rest(tr, crcAcc, raw, flags, dims)
	if err != nil {
		return nil, nil, err
	}
	pad := int64(h.sectionOff) - int64(v3HeaderFixed+len(h.metaRaw))
	if _, err := io.CopyN(io.Discard, raw, pad); err != nil {
		return nil, nil, fmt.Errorf("store: skip section padding: %w", err)
	}
	section := make([]byte, h.sectionLen)
	if _, err := io.ReadFull(raw, section); err != nil {
		return nil, nil, fmt.Errorf("store: read factor section: %w", err)
	}
	if got := crc32.ChecksumIEEE(section); got != h.sectionCRC {
		return nil, nil, fmt.Errorf("store: section checksum mismatch: file %08x, computed %08x", h.sectionCRC, got)
	}
	widen := func(off, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			bits := binary.LittleEndian.Uint32(section[4*(off+i):])
			xs[i] = float64(math.Float32frombits(bits))
		}
		return xs
	}
	u := widen(0, h.nu)
	v := widen(h.nu, h.nv)
	var b []float64
	if h.cfg.UseBias {
		b = widen(h.nu+h.nv, h.nb)
	}
	m, err := mf.FromRaw(h.cfg, u, v, b)
	if err != nil {
		return nil, nil, err
	}
	meta, err := h.decodeMeta()
	if err != nil {
		return nil, nil, err
	}
	return m, meta, nil
}

// f32FromLE decodes one little-endian float32 from b.
func f32FromLE(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

func writeFloats32(w io.Writer, xs []float32) error {
	var buf [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

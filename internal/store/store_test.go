package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"clapf/internal/mathx"
	"clapf/internal/mf"
)

func sampleModel(seed uint64, useBias bool) *mf.Model {
	m := mf.MustNew(mf.Config{NumUsers: 7, NumItems: 11, Dim: 5, UseBias: useBias})
	m.InitGaussian(mathx.NewRNG(seed), 0.4)
	if useBias {
		for i := int32(0); i < 11; i++ {
			m.AddBias(i, mathx.NewRNG(seed+uint64(i)).NormFloat64())
		}
	}
	return m
}

func modelsEqual(a, b *mf.Model) bool {
	if a.NumUsers() != b.NumUsers() || a.NumItems() != b.NumItems() ||
		a.Dim() != b.Dim() || a.HasBias() != b.HasBias() {
		return false
	}
	for u := int32(0); u < int32(a.NumUsers()); u++ {
		for i := int32(0); i < int32(a.NumItems()); i++ {
			if a.Score(u, i) != b.Score(u, i) {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	for _, useBias := range []bool{true, false} {
		m := sampleModel(1, useBias)
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("Save(bias=%v): %v", useBias, err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load(bias=%v): %v", useBias, err)
		}
		if !modelsEqual(m, got) {
			t.Errorf("round trip (bias=%v) changed the model", useBias)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, useBias bool) bool {
		m := sampleModel(seed, useBias)
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			return false
		}
		got, err := Load(&buf)
		return err == nil && modelsEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	m := sampleModel(2, true)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip one byte in the parameter region: checksum must catch it.
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Error("corrupted payload accepted")
	}

	// Truncation must fail cleanly.
	if _, err := Load(bytes.NewReader(clean[:len(clean)-10])); err == nil {
		t.Error("truncated payload accepted")
	}

	// Wrong magic.
	bad := append([]byte(nil), clean...)
	bad[0] = 'X'
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	// Wrong version.
	badv := append([]byte(nil), clean...)
	badv[8] = 0xFE
	if _, err := Load(bytes.NewReader(badv)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestLoadRejectsHugeDimensions(t *testing.T) {
	m := sampleModel(3, false)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The users field lives at offset 16; blow it up to provoke the
	// allocation guard before any huge read happens.
	for i := 16; i < 24; i++ {
		data[i] = 0xFF
	}
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("implausible dimensions accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.clapf")
	m := sampleModel(4, true)
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(m, got) {
		t.Error("file round trip changed the model")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want only the model file", len(entries))
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing file accepted")
	}
}

// failAfter writes n bytes successfully, then errors — exercising every
// partial-write path in Save.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		can := f.n - f.written
		if can < 0 {
			can = 0
		}
		f.written += can
		return can, errFail
	}
	f.written += len(p)
	return len(p), nil
}

var errFail = os.ErrClosed

func TestSaveWriteErrors(t *testing.T) {
	m := sampleModel(6, true)
	// Probe failure at several offsets covering magic, header, params, and
	// the trailing checksum.
	for _, n := range []int{0, 4, 10, 20, 40, 200, 800, 849} {
		w := &failAfter{n: n}
		if err := Save(w, m); err == nil {
			t.Errorf("Save with writer failing at byte %d succeeded", n)
		}
	}
}

func TestSaveFileUnwritableDir(t *testing.T) {
	m := sampleModel(7, false)
	if err := SaveFile("/nonexistent-dir-xyz/m.clapf", m); err == nil {
		t.Error("unwritable directory accepted")
	}
}

func sampleMeta() *Meta {
	return &Meta{
		Epoch:           3,
		Step:            1234,
		TotalSteps:      9999,
		RNG:             []uint64{1, 2, 3, 4},
		SamplerRNG:      []uint64{5, 6, 7, 8},
		SamplerSteps:    1234,
		LossEWMA:        0.573125,
		LossN:           1024,
		DataFingerprint: 0xDEADBEEFCAFE,
		Hyper:           map[string]string{"lambda": "0.4", "variant": "MAP"},
	}
}

func metasEqual(a, b *Meta) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return bytes.Equal(aj, bj)
}

func TestMetaRoundTrip(t *testing.T) {
	m := sampleModel(9, true)
	meta := sampleMeta()
	var buf bytes.Buffer
	if err := SaveWithMeta(&buf, m, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := LoadWithMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(m, got) {
		t.Error("v2 round trip changed the model")
	}
	if gotMeta == nil || !metasEqual(meta, gotMeta) {
		t.Errorf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
}

func TestV1FilesStillLoad(t *testing.T) {
	// Save emits version 1; Load and LoadWithMeta must both accept it,
	// the latter reporting no metadata.
	m := sampleModel(10, true)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	v1 := buf.Bytes()
	if v1[8] != 1 {
		t.Fatalf("Save wrote version %d, want 1", v1[8])
	}
	got, meta, err := LoadWithMeta(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Errorf("v1 file produced metadata %+v", meta)
	}
	if !modelsEqual(m, got) {
		t.Error("v1 load changed the model")
	}
}

func TestLoadDiscardsMetaButVerifies(t *testing.T) {
	m := sampleModel(11, false)
	var buf bytes.Buffer
	if err := SaveWithMeta(&buf, m, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	got, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(m, got) {
		t.Error("Load of v2 file changed the model")
	}
	// Corrupting a byte inside the meta trailer must still fail Load:
	// the checksum covers the trailer.
	data[len(data)-10] ^= 0x01
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("corrupt meta trailer accepted")
	}
}

func TestMetaFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.clapf")
	m := sampleModel(12, true)
	meta := sampleMeta()
	if err := SaveFileWithMeta(path, m, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := LoadFileWithMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(m, got) || !metasEqual(meta, gotMeta) {
		t.Error("file meta round trip mismatch")
	}
}

func TestLoadRejectsHugeMetaLength(t *testing.T) {
	m := sampleModel(13, false)
	var buf bytes.Buffer
	if err := SaveWithMeta(&buf, m, &Meta{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The meta length field sits right before the trailer JSON + CRC.
	metaLenOff := len(data) - 4 /*crc*/ - 2 /*"{}"*/ - 4 /*len*/
	for i := 0; i < 4; i++ {
		data[metaLenOff+i] = 0xFF
	}
	if _, _, err := LoadWithMeta(bytes.NewReader(data)); err == nil {
		t.Error("huge meta length accepted")
	}
}

func TestLoadTruncatedEverywhere(t *testing.T) {
	m := sampleModel(8, true)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncating at every prefix length must fail, never panic.
	for n := 0; n < len(full)-1; n += 37 {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}
}

package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointPathRoundTrip(t *testing.T) {
	p := CheckpointPath("/tmp/x", 42)
	step, ok := checkpointStep(filepath.Base(p))
	if !ok || step != 42 {
		t.Fatalf("checkpointStep(%q) = %d, %v", filepath.Base(p), step, ok)
	}
	for _, bad := range []string{"model.clapf", "ckpt-.clapf", "ckpt-12x.clapf", "ckpt-000000000001", "x-ckpt-000000000001.clapf"} {
		if _, ok := checkpointStep(bad); ok {
			t.Errorf("checkpointStep(%q) accepted", bad)
		}
	}
}

func TestWriteCheckpointKeepsLastN(t *testing.T) {
	dir := t.TempDir()
	m := sampleModel(20, true)
	for _, step := range []int{100, 200, 300, 400} {
		if _, err := WriteCheckpoint(dir, m, &Meta{Step: step}, 2); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("kept %d generations, want 2: %v", len(gens), gens)
	}
	if filepath.Base(gens[0]) != filepath.Base(CheckpointPath(dir, 400)) ||
		filepath.Base(gens[1]) != filepath.Base(CheckpointPath(dir, 300)) {
		t.Errorf("kept wrong generations: %v", gens)
	}
}

func TestLatestCheckpointSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	m := sampleModel(21, false)
	if _, err := WriteCheckpoint(dir, m, &Meta{Step: 100}, 0); err != nil {
		t.Fatal(err)
	}
	goodPath, err := WriteCheckpoint(dir, m, &Meta{Step: 200}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write of generation 300: a truncated file.
	full, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	tornPath := CheckpointPath(dir, 300)
	if err := os.WriteFile(tornPath, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, meta, path, skipped, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != goodPath {
		t.Errorf("resumed from %s, want %s", path, goodPath)
	}
	if meta.Step != 200 {
		t.Errorf("meta.Step = %d, want 200", meta.Step)
	}
	if len(skipped) != 1 || skipped[0] != tornPath {
		t.Errorf("skipped = %v, want [%s]", skipped, tornPath)
	}
	if !modelsEqual(m, got) {
		t.Error("resumed model differs")
	}
}

func TestLatestCheckpointEmptyAndMissing(t *testing.T) {
	// Missing directory: not-exist error, no panic.
	_, _, _, _, err := LatestCheckpoint(filepath.Join(t.TempDir(), "absent"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing dir: err = %v, want ErrNotExist", err)
	}

	// Directory with only garbage: every generation skipped, then not-exist.
	dir := t.TempDir()
	if err := os.WriteFile(CheckpointPath(dir, 1), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, skipped, err := LatestCheckpoint(dir)
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("all-corrupt dir: err = %v, want ErrNotExist", err)
	}
	if len(skipped) != 1 {
		t.Errorf("skipped = %v, want one entry", skipped)
	}
}

//go:build !unix

package store

import (
	"fmt"
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap reads the file into the heap
// instead. LoadMapped keeps working — the O(1) page-in property is simply
// not available, only the zero-parse float32 view.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	data = make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, fmt.Errorf("read in lieu of mmap: %w", err)
	}
	return data, func() error { return nil }, nil
}

package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"

	"clapf/internal/mf"
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian — the file's byte order. On such hosts (every platform
// this repository targets) the mapped section casts directly to []float32;
// otherwise LoadMapped falls back to a decode copy.
var hostLittleEndian = func() bool {
	var x uint16 = 0x0102
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// mapping owns one mmap region. It deliberately references neither the
// MappedModel nor the Factors32 built over it: the Factors32 pins the
// mapping through Retain, and keeping this struct leaf-like means the
// finalizer below sits on an object outside any reference cycle, so the
// runtime is guaranteed to run it once every reader of the mapped slices
// is unreachable — generation retirement without a coordinated munmap.
type mapping struct {
	data   []byte
	unmap  func() error
	closed atomic.Bool
}

func (mp *mapping) close() error {
	if !mp.closed.CompareAndSwap(false, true) {
		return nil
	}
	runtime.SetFinalizer(mp, nil)
	return mp.unmap()
}

// MappedModel is a v3 store file paged in by LoadMapped: a float32
// parameter set whose backing storage is the kernel's page cache, not the
// Go heap. Loading costs O(header) — the factor section is mapped, not
// read — so serve start-up and hot reload of a multi-gigabyte model are
// near-instant and its clean pages are evictable under memory pressure.
//
// Lifecycle: the Factors32 returned by Factors pins the mapping for as
// long as any live liveState generation (or any other reader) references
// it; when the last reference dies, a finalizer releases the region. Close
// releases it eagerly and is only safe once no goroutine can still score
// through Factors — long-running servers let the finalizer do generation
// retirement instead.
type MappedModel struct {
	f          *mf.Factors32
	meta       *Meta
	mp         *mapping
	sectionOff uint64
	sectionCRC uint32
}

// LoadMapped opens a version-3 store file and maps its factor section.
// The header (geometry, meta, header CRC) is read and verified eagerly;
// the factor payload is not touched. Call Verify to checksum the section
// before trusting the factors — the serve reload path does, so a torn or
// bit-flipped file can never go live.
//
// Only v3 files can be mapped; v1/v2 files need the parsing loaders
// (Load/LoadFile).
func LoadMapped(path string) (*MappedModel, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer file.Close()

	crc := crc32.NewIEEE()
	br := bufio.NewReader(file)
	tr := io.TeeReader(br, crc)

	var gotMagic [8]byte
	if _, err := io.ReadFull(tr, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("store: read magic: %w", err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("store: bad magic %q", gotMagic[:])
	}
	version, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	if version != VersionF32 {
		return nil, fmt.Errorf("store: cannot map version-%d file (only v%d is mmap-able; use Load)", version, VersionF32)
	}
	flags, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	dims := make([]uint64, 3)
	for i := range dims {
		if dims[i], err = readU64(tr); err != nil {
			return nil, err
		}
	}
	if err := validateDims(dims); err != nil {
		return nil, err
	}
	h, err := readV3Rest(tr, crc, br, flags, dims)
	if err != nil {
		return nil, err
	}
	st, err := file.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if want := int64(h.sectionOff + h.sectionLen); st.Size() != want {
		return nil, fmt.Errorf("store: file is %d bytes, header promises %d (truncated or trailing garbage)", st.Size(), want)
	}

	data, unmap, err := mmapFile(file, st.Size())
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	mp := &mapping{data: data, unmap: unmap}
	runtime.SetFinalizer(mp, func(mp *mapping) { _ = mp.close() })

	section := data[h.sectionOff : h.sectionOff+h.sectionLen]
	floats, ok := castF32(section)
	if !ok {
		// Big-endian host or an allocator that broke 4-byte alignment on
		// the fallback buffer: decode-copy. Correct everywhere, zero-copy
		// nowhere.
		floats = make([]float32, len(section)/4)
		for i := range floats {
			floats[i] = f32FromLE(section[4*i:])
		}
	}
	u := floats[:h.nu:h.nu]
	v := floats[h.nu : h.nu+h.nv : h.nu+h.nv]
	var b []float32
	if h.nb > 0 {
		b = floats[h.nu+h.nv:]
	}
	f, err := mf.FromRaw32(h.cfg, u, v, b)
	if err != nil {
		mp.close()
		return nil, err
	}
	f.Retain(mp)
	meta, err := h.decodeMeta()
	if err != nil {
		mp.close()
		return nil, err
	}
	return &MappedModel{f: f, meta: meta, mp: mp, sectionOff: h.sectionOff, sectionCRC: h.sectionCRC}, nil
}

// Factors returns the float32 parameter set backed by the mapping. The
// returned value stays valid after the MappedModel itself is dropped — it
// pins the mapped pages until it is itself unreachable.
func (mm *MappedModel) Factors() *mf.Factors32 { return mm.f }

// Meta returns the metadata trailer (never nil for a v3 file).
func (mm *MappedModel) Meta() *Meta { return mm.meta }

// Verify checksums the mapped factor section against the header's section
// CRC. This is the one deliberately O(bytes) operation on the mapped path
// — callers that are about to serve from the factors (clapf-serve startup,
// hot reload) pay one sequential scan at page-cache bandwidth; callers
// that only inspect the header skip it.
func (mm *MappedModel) Verify() error {
	if mm.mp.closed.Load() {
		return fmt.Errorf("store: Verify after Close")
	}
	section := mm.mp.data[mm.sectionOff:]
	if got := crc32.ChecksumIEEE(section); got != mm.sectionCRC {
		return fmt.Errorf("store: section checksum mismatch: file %08x, computed %08x", mm.sectionCRC, got)
	}
	return nil
}

// Close releases the mapping immediately. It is safe to call more than
// once, but never while any goroutine can still reach the Factors32 —
// reads through released pages fault. Servers should simply drop their
// references and let the finalizer retire the generation.
func (mm *MappedModel) Close() error { return mm.mp.close() }

// castF32 reinterprets little-endian float32 bytes as a []float32 without
// copying. Fails (ok == false) on big-endian hosts or when the base
// address is not 4-byte aligned; v3's page-aligned section offset makes
// the mmap path always aligned.
func castF32(b []byte) (xs []float32, ok bool) {
	if len(b) == 0 {
		return nil, true
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"clapf/internal/mf"
)

// Checkpoint file names are ckpt-<step>.clapf with a fixed-width step so
// lexical and numeric order agree.
const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".clapf"
	ckptDigits = 12
)

// CheckpointPath returns the canonical file name for a checkpoint taken at
// the given step, inside dir.
func CheckpointPath(dir string, step int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%0*d%s", ckptPrefix, ckptDigits, step, ckptSuffix))
}

// checkpointStep parses the step out of a checkpoint file name, reporting
// ok=false for names that are not checkpoints.
func checkpointStep(name string) (step int, ok bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// ListCheckpoints returns the checkpoint files in dir ordered newest
// (highest step) first. Non-checkpoint files are ignored. A missing
// directory is an empty list, not an error.
func ListCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint dir: %w", err)
	}
	type gen struct {
		step int
		path string
	}
	var gens []gen
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if step, ok := checkpointStep(e.Name()); ok {
			gens = append(gens, gen{step, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].step > gens[j].step })
	paths := make([]string, len(gens))
	for i, g := range gens {
		paths[i] = g.path
	}
	return paths, nil
}

// WriteCheckpoint durably writes a version-2 checkpoint for the given step
// into dir (creating it if needed) and prunes old generations so at most
// keep remain (keep <= 0 means keep everything). Pruning failures are
// reported but the checkpoint itself is already safe on disk.
func WriteCheckpoint(dir string, m *mf.Model, meta *Meta, keep int) (string, error) {
	if meta == nil {
		meta = &Meta{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	path := CheckpointPath(dir, meta.Step)
	if err := SaveFileWithMeta(path, m, meta); err != nil {
		return "", err
	}
	if keep > 0 {
		gens, err := ListCheckpoints(dir)
		if err != nil {
			return path, err
		}
		for _, old := range gens[min(keep, len(gens)):] {
			if err := os.Remove(old); err != nil {
				return path, fmt.Errorf("store: prune %s: %w", old, err)
			}
		}
	}
	return path, nil
}

// LatestCheckpoint loads the newest valid checkpoint in dir, skipping
// generations that fail to load (truncated, corrupt, or wrong format) —
// exactly what a crash mid-write or a torn disk leaves behind. It returns
// the loaded model and metadata, the path it came from, and the paths it
// had to skip. A directory with no valid checkpoint returns os.ErrNotExist
// (wrapped).
func LatestCheckpoint(dir string) (m *mf.Model, meta *Meta, path string, skipped []string, err error) {
	gens, err := ListCheckpoints(dir)
	if err != nil {
		return nil, nil, "", nil, err
	}
	for _, p := range gens {
		m, meta, loadErr := LoadFileWithMeta(p)
		if loadErr != nil {
			skipped = append(skipped, p)
			continue
		}
		return m, meta, p, skipped, nil
	}
	return nil, nil, "", skipped, fmt.Errorf("store: no valid checkpoint in %s: %w", dir, os.ErrNotExist)
}

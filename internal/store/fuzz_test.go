package store

import (
	"bytes"
	"testing"

	"clapf/internal/mf"
)

// FuzzLoad throws arbitrary bytes at the model loader. Load must never
// panic or over-allocate; it either returns a model whose re-serialization
// is consistent, or an error. The seed corpus covers the interesting
// shapes: valid v1, v2, and v3 files, truncated files, and files whose
// checksums were flipped.
func FuzzLoad(f *testing.F) {
	m := sampleModel(1, true)
	var v1 bytes.Buffer
	if err := Save(&v1, m); err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := SaveWithMeta(&v2, m, sampleMeta()); err != nil {
		f.Fatal(err)
	}
	flipped := append([]byte(nil), v1.Bytes()...)
	flipped[len(flipped)-1] ^= 0xFF

	var v3 bytes.Buffer
	if err := SaveF32(&v3, mf.QuantizeF32(m), sampleMeta()); err != nil {
		f.Fatal(err)
	}
	v3flip := append([]byte(nil), v3.Bytes()...)
	v3flip[len(v3flip)-1] ^= 0xFF // section byte: section CRC must catch it
	v3hdr := append([]byte(nil), v3.Bytes()...)
	v3hdr[9] ^= 0x01 // version word: dispatch must reject cleanly

	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:v1.Len()/2])
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(v3.Bytes())
	f.Add(v3.Bytes()[:v3HeaderFixed/2])
	f.Add(v3.Bytes()[:v3.Len()-7])
	f.Add(v3flip)
	f.Add(v3hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, meta, err := LoadWithMeta(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must survive a round trip bit-for-bit.
		var buf bytes.Buffer
		if meta == nil {
			err = Save(&buf, got)
		} else {
			err = SaveWithMeta(&buf, got, meta)
		}
		if err != nil {
			t.Fatalf("re-save of fuzz-accepted model failed: %v", err)
		}
		again, _, err := LoadWithMeta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reload of re-saved model failed: %v", err)
		}
		if !modelsEqual(got, again) {
			t.Fatal("fuzz round trip changed the model")
		}
	})
}

package store

import (
	"bytes"
	"testing"
)

// FuzzLoad throws arbitrary bytes at the model loader. Load must never
// panic or over-allocate; it either returns a model whose re-serialization
// is consistent, or an error. The seed corpus covers the interesting
// shapes: a valid v1 file, a valid v2 file with metadata, a truncated
// file, and a file whose checksum was flipped.
func FuzzLoad(f *testing.F) {
	m := sampleModel(1, true)
	var v1 bytes.Buffer
	if err := Save(&v1, m); err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := SaveWithMeta(&v2, m, sampleMeta()); err != nil {
		f.Fatal(err)
	}
	flipped := append([]byte(nil), v1.Bytes()...)
	flipped[len(flipped)-1] ^= 0xFF

	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:v1.Len()/2])
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, meta, err := LoadWithMeta(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must survive a round trip bit-for-bit.
		var buf bytes.Buffer
		if meta == nil {
			err = Save(&buf, got)
		} else {
			err = SaveWithMeta(&buf, got, meta)
		}
		if err != nil {
			t.Fatalf("re-save of fuzz-accepted model failed: %v", err)
		}
		again, _, err := LoadWithMeta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reload of re-saved model failed: %v", err)
		}
		if !modelsEqual(got, again) {
			t.Fatal("fuzz round trip changed the model")
		}
	})
}

package fault

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"clapf/internal/mf"
	"clapf/internal/store"
)

func poisonTestModel(t *testing.T) *mf.Model {
	t.Helper()
	return mf.MustNew(mf.Config{NumUsers: 6, NumItems: 10, Dim: 4, UseBias: true, InitStd: 0.1})
}

func TestPoisonItemFactors(t *testing.T) {
	m := poisonTestModel(t)
	idx := PoisonItemFactors(m, 7, 5)
	if len(idx) != 5 {
		t.Fatalf("poisoned %d entries, want 5", len(idx))
	}
	_, v, _ := m.RawParams()
	for _, i := range idx {
		if !math.IsNaN(v[i]) {
			t.Errorf("v[%d] = %v, want NaN", i, v[i])
		}
	}
	u, vn, b := m.CountNonFinite()
	if u != 0 || vn != 5 || b != 0 {
		t.Errorf("CountNonFinite = (%d, %d, %d), want (0, 5, 0)", u, vn, b)
	}

	// Deterministic: the same seed poisons the same entries.
	m2 := poisonTestModel(t)
	idx2 := PoisonItemFactors(m2, 7, 5)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatalf("seed 7 poisoned %v then %v", idx, idx2)
		}
	}

	// count beyond the matrix saturates instead of spinning.
	m3 := poisonTestModel(t)
	if got := len(PoisonItemFactors(m3, 1, 10*4+100)); got != 10*4 {
		t.Errorf("oversized poison hit %d entries, want %d", got, 10*4)
	}
}

func TestPoisonAtStepFiresOnce(t *testing.T) {
	m := poisonTestModel(t)
	hook := PoisonAtStep(m, 100, 3, 2)
	hook(50)
	if _, v, _ := m.CountNonFinite(); v != 0 {
		t.Fatalf("poisoned before the target step (%d entries)", v)
	}
	hook(100)
	if _, v, _ := m.CountNonFinite(); v != 2 {
		t.Fatalf("poisoned %d entries at the target step, want 2", v)
	}
	hook(200) // must not poison again
	if _, v, _ := m.CountNonFinite(); v != 2 {
		t.Fatalf("poisoned %d entries after refire, want still 2", v)
	}
}

type scalerFunc func(float64) float64

func (f scalerFunc) ScaleLearnRate(factor float64) float64 { return f(factor) }

func TestExplodingLRFiresOnce(t *testing.T) {
	rate := 0.05
	hook := ExplodingLR(scalerFunc(func(f float64) float64 {
		rate *= f
		return rate
	}), 1000, 50)
	hook(999)
	if rate != 0.05 {
		t.Fatalf("rate scaled before the target step: %v", rate)
	}
	hook(1000)
	if rate != 0.05*50 {
		t.Fatalf("rate = %v after explosion, want %v", rate, 0.05*50)
	}
	hook(2000)
	if rate != 0.05*50 {
		t.Fatalf("rate = %v after refire, want unchanged", rate)
	}
}

func TestTearNewestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m := poisonTestModel(t)
	for _, step := range []int{100, 200} {
		if _, err := store.WriteCheckpoint(dir, m, &store.Meta{Step: step}, 0); err != nil {
			t.Fatal(err)
		}
	}
	path, err := TearNewestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "ckpt-000000000200.clapf" {
		t.Fatalf("tore %s, want the step-200 generation", path)
	}

	// The torn generation must be skipped; rollback lands on step 100.
	_, meta, gotPath, skipped, err := store.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 100 {
		t.Errorf("LatestCheckpoint restored step %d, want 100 (torn 200 skipped)", meta.Step)
	}
	if len(skipped) != 1 || skipped[0] != path {
		t.Errorf("skipped = %v, want [%s]", skipped, path)
	}
	if filepath.Base(gotPath) != "ckpt-000000000100.clapf" {
		t.Errorf("restored from %s", gotPath)
	}

	if _, err := TearNewestCheckpoint(t.TempDir()); err == nil {
		t.Error("tearing an empty directory succeeded")
	}
	if _, err := TearNewestCheckpoint(filepath.Join(dir, "absent")); !os.IsNotExist(err) && err == nil {
		t.Error("tearing a missing directory succeeded")
	}
}

// Package fault provides deterministic fault injection for chaos tests:
// writers and readers that fail at an exact byte offset, and file
// corruption helpers that reproduce what crashes and torn disks leave
// behind (truncated tails, flipped bits). Production code never imports
// this package; tests use it to prove the store and checkpoint layers
// survive the failures they claim to survive.
package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrInjected is the error returned by injected failures. Tests assert on
// it with errors.Is to distinguish planned faults from real ones.
var ErrInjected = errors.New("fault: injected error")

// Writer passes bytes through to W until FailAt total bytes have been
// written, then fails every subsequent write with Err (ErrInjected when
// nil). The write that crosses the boundary is a short write: bytes up to
// the boundary reach W, the rest do not — exactly the torn tail a crash
// mid-write leaves on disk.
type Writer struct {
	W      io.Writer
	FailAt int64
	Err    error

	written int64
}

// NewWriter returns a Writer failing after failAt bytes.
func NewWriter(w io.Writer, failAt int64) *Writer {
	return &Writer{W: w, FailAt: failAt}
}

func (w *Writer) Write(p []byte) (int, error) {
	errOut := w.Err
	if errOut == nil {
		errOut = ErrInjected
	}
	remain := w.FailAt - w.written
	if remain <= 0 {
		return 0, errOut
	}
	if int64(len(p)) <= remain {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	n, err := w.W.Write(p[:remain])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, errOut
}

// Written returns the number of bytes that reached the underlying writer.
func (w *Writer) Written() int64 { return w.written }

// Reader passes bytes through from R until FailAt total bytes have been
// read, then fails with Err (ErrInjected when nil). The boundary read is
// short: bytes up to the boundary are returned with a nil error, the next
// call fails — matching io.Reader's contract so bufio and io.ReadFull
// propagate the fault faithfully.
type Reader struct {
	R      io.Reader
	FailAt int64
	Err    error

	read int64
}

// NewReader returns a Reader failing after failAt bytes.
func NewReader(r io.Reader, failAt int64) *Reader {
	return &Reader{R: r, FailAt: failAt}
}

func (r *Reader) Read(p []byte) (int, error) {
	errOut := r.Err
	if errOut == nil {
		errOut = ErrInjected
	}
	remain := r.FailAt - r.read
	if remain <= 0 {
		return 0, errOut
	}
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := r.R.Read(p)
	r.read += int64(n)
	return n, err
}

// Truncate cuts the file at path down to n bytes — the on-disk aftermath
// of a process killed mid-write (or a rename that beat its data to disk).
func Truncate(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	if n < 0 || n > info.Size() {
		return fmt.Errorf("fault: truncate %s to %d bytes, have %d", path, n, info.Size())
	}
	return os.Truncate(path, n)
}

// FlipByte XOR-flips the byte at offset off in the file at path — a
// single-sector corruption that an integrity checksum must catch.
func FlipByte(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("fault: read %s@%d: %w", path, off, err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("fault: write %s@%d: %w", path, off, err)
	}
	return f.Close()
}

// CrashFile simulates a crash while writing path: it runs write against a
// Writer that dies after failAt bytes and leaves whatever made it through
// on disk, bypassing any atomic-rename discipline — the file exists but is
// incomplete, as after a power cut between rename and data sync.
func CrashFile(path string, failAt int64, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	werr := write(NewWriter(f, failAt))
	if cerr := f.Close(); cerr != nil {
		return cerr
	}
	if werr == nil {
		return fmt.Errorf("fault: write completed before byte %d — nothing crashed", failAt)
	}
	if !errors.Is(werr, ErrInjected) {
		return werr
	}
	return nil
}

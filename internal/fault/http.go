package fault

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// This file injects serving-side failures for the cluster chaos suite:
// a wrapper that makes a healthy HTTP shard look killed, slow, or
// torn-mid-response, switchable at runtime so one test phase can break a
// shard and a later phase can heal it without restarting anything.

// Chaos wraps an http.Handler with runtime-switchable failure modes,
// applied in this order:
//
//   - Down: abort the connection before running the handler — to the
//     client this is indistinguishable from a killed process (EOF /
//     connection reset), which is exactly what a router's failure
//     detection must classify as a dead shard.
//   - Latency: sleep before handling, simulating an overloaded or
//     GC-pausing shard (the hedging path's reason to exist).
//   - TornEvery(n): every n-th response advertises the full
//     Content-Length, writes only half the body, and aborts — the torn
//     payload a crash mid-write puts on the wire. The client sees an
//     unexpected EOF with a syntactically broken JSON prefix.
//
// All switches are atomic; flipping them mid-load is the point.
type Chaos struct {
	next      http.Handler
	down      atomic.Bool
	latencyNS atomic.Int64
	tornEvery atomic.Int64
	tornCount atomic.Int64
}

// NewChaos wraps next with all failure modes off.
func NewChaos(next http.Handler) *Chaos {
	return &Chaos{next: next}
}

// SetDown makes every request abort its connection (true) or restores
// normal service (false).
func (c *Chaos) SetDown(down bool) { c.down.Store(down) }

// Down reports whether the shard is currently playing dead.
func (c *Chaos) Down() bool { return c.down.Load() }

// SetLatency injects d of sleep before every request; 0 disables.
func (c *Chaos) SetLatency(d time.Duration) { c.latencyNS.Store(int64(d)) }

// SetTornEvery tears every n-th response mid-body; n <= 0 disables.
func (c *Chaos) SetTornEvery(n int) {
	c.tornEvery.Store(int64(n))
	c.tornCount.Store(0)
}

func (c *Chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.down.Load() {
		// ErrAbortHandler makes net/http drop the connection without
		// finishing the response — the client-visible signature of a
		// process that died between accept and reply.
		panic(http.ErrAbortHandler)
	}
	if d := time.Duration(c.latencyNS.Load()); d > 0 {
		time.Sleep(d)
	}
	if n := c.tornEvery.Load(); n > 0 && c.tornCount.Add(1)%n == 0 {
		c.tearResponse(w, r)
		return
	}
	c.next.ServeHTTP(w, r)
}

// tearResponse runs the real handler into a buffer, then replays the
// status and headers with an honest Content-Length, writes only half the
// body, and aborts the connection — a response torn exactly where a
// crash mid-write would tear it.
func (c *Chaos) tearResponse(w http.ResponseWriter, r *http.Request) {
	rec := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
	c.next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if len(rec.body) < 2 {
		panic(http.ErrAbortHandler) // nothing to tear; just die
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(rec.body)))
	w.WriteHeader(rec.status)
	_, _ = w.Write(rec.body[:len(rec.body)/2])
	if f, ok := w.(http.Flusher); ok {
		f.Flush() // push the torn prefix onto the wire before dying
	}
	panic(http.ErrAbortHandler)
}

// bufferedResponse captures a handler's full response in memory.
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

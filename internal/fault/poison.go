package fault

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// This file injects the training-side failures the guard subsystem
// (internal/guard) exists to catch: NaN writes into the parameter
// vectors, runaway learning-rate schedules, and checkpoint corruption
// timed to land during a rollback.

// PoisonItemFactors writes NaN into count distinct entries of the model's
// item-factor matrix V, chosen deterministically from seed, and returns
// the flat indices it poisoned. This reproduces what one overflowed SGD
// update leaves behind: a few non-finite entries that spread to every
// score (and, through the user-factor update, every parameter) they
// touch.
func PoisonItemFactors(m *mf.Model, seed uint64, count int) []int {
	_, v, _ := m.RawParams()
	if count > len(v) {
		count = len(v)
	}
	rng := mathx.NewRNG(seed)
	chosen := make(map[int]bool, count)
	idx := make([]int, 0, count)
	for len(idx) < count {
		i := rng.Intn(len(v))
		if chosen[i] {
			continue
		}
		chosen[i] = true
		v[i] = math.NaN()
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// PoisonAtStep returns a step hook that poisons the model once, the first
// time it observes stepsDone >= step. Wire it into a training loop's
// between-batch callback to reproduce mid-run parameter corruption at a
// deterministic point.
func PoisonAtStep(m *mf.Model, step int, seed uint64, count int) func(stepsDone int) {
	fired := false
	return func(stepsDone int) {
		if fired || stepsDone < step {
			return
		}
		fired = true
		PoisonItemFactors(m, seed, count)
	}
}

// LearnRateScaler is the trainer surface ExplodingLR drives; both
// core trainers satisfy it.
type LearnRateScaler interface {
	ScaleLearnRate(factor float64) float64
}

// ExplodingLR returns a step hook that multiplies the trainee's learning
// rate by factor once, the first time it observes stepsDone >= step — a
// runaway schedule (fat-fingered config push, broken decay code) that
// sends SGD into divergence without touching any parameter directly.
func ExplodingLR(s LearnRateScaler, step int, factor float64) func(stepsDone int) {
	fired := false
	return func(stepsDone int) {
		if fired || stepsDone < step {
			return
		}
		fired = true
		s.ScaleLearnRate(factor)
	}
}

// TearNewestCheckpoint truncates the newest checkpoint generation in dir
// to half its size and returns its path — a torn write discovered only
// when a rollback goes looking for it, forcing recovery to fall back to
// an older generation.
func TearNewestCheckpoint(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("fault: %w", err)
	}
	newest := ""
	for _, e := range entries {
		name := e.Name()
		// Checkpoint generations are fixed-width zero-padded
		// (ckpt-<seq>.clapf), so lexical order is generation order.
		if e.Type().IsRegular() && len(name) > 10 && name[:5] == "ckpt-" && filepath.Ext(name) == ".clapf" && name > newest {
			newest = name
		}
	}
	if newest == "" {
		return "", fmt.Errorf("fault: no checkpoint generations in %s", dir)
	}
	path := filepath.Join(dir, newest)
	info, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("fault: %w", err)
	}
	if err := Truncate(path, info.Size()/2); err != nil {
		return "", err
	}
	return path, nil
}

package fault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriterFailsAtBoundary(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 10)

	n, err := w.Write([]byte("0123456"))
	if n != 7 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// This write crosses the boundary: 3 bytes land, then the injected error.
	n, err = w.Write([]byte("789abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("boundary write: n=%d err=%v", n, err)
	}
	if buf.String() != "0123456789" {
		t.Errorf("underlying writer got %q", buf.String())
	}
	if w.Written() != 10 {
		t.Errorf("Written() = %d", w.Written())
	}
	// Every later write fails immediately.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("post-fault write: n=%d err=%v", n, err)
	}
}

func TestWriterCustomError(t *testing.T) {
	w := &Writer{W: io.Discard, FailAt: 0, Err: os.ErrClosed}
	if _, err := w.Write([]byte("x")); !errors.Is(err, os.ErrClosed) {
		t.Errorf("custom error not propagated: %v", err)
	}
}

func TestReaderFailsAtBoundary(t *testing.T) {
	r := NewReader(strings.NewReader("0123456789abcdef"), 10)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadAll err = %v", err)
	}
	if string(got) != "0123456789" {
		t.Errorf("read %q before fault", got)
	}
}

func TestTruncateAndFlipByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "hello" {
		t.Errorf("after truncate: %q", got)
	}
	if err := Truncate(path, 100); err == nil {
		t.Error("growing truncate accepted")
	}
	if err := FlipByte(path, 0); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if got[0] != 'h'^0xFF {
		t.Errorf("byte not flipped: %q", got)
	}
	if err := FlipByte(path, 99); err == nil {
		t.Error("out-of-range flip accepted")
	}
}

func TestCrashFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	err := CrashFile(path, 4, func(w io.Writer) error {
		_, err := w.Write([]byte("full payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "full" {
		t.Errorf("torn file holds %q", got)
	}

	// A write that finishes under the limit is a test bug, not a crash.
	if err := CrashFile(path, 1<<20, func(w io.Writer) error {
		_, err := w.Write([]byte("tiny"))
		return err
	}); err == nil {
		t.Error("CrashFile accepted a write that never crashed")
	}
}

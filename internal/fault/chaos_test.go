package fault_test

// Chaos-recovery suite: end-to-end proof that the guard subsystem turns
// injected training failures (internal/fault) into automatic recoveries.
// These tests drive real trainers through guard.Supervisor.Run, the same
// loop clapf-train uses, and are exercised under -race by scripts/check.sh.

import (
	"testing"

	"clapf/internal/core"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/fault"
	"clapf/internal/guard"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
	"clapf/internal/store"
)

// chaosProfile is the unit-test-sized ML100K shape used by the
// statistical suites in internal/core.
var chaosProfile = datagen.Table1Profiles[0].Scaled(0.12)

// TestChaosPoisonRecoversEquivalent is the headline guarantee of this
// subsystem: NaN written into V mid-run trips the guard, training rolls
// back to the last good checkpoint with the learning rate halved, and the
// recovered run's final ranking metrics are statistically equivalent to a
// never-poisoned run (Welch two-sample t-test, rejecting only below
// α = 0.01).
func TestChaosPoisonRecoversEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-repetition training study")
	}
	t.Parallel()
	const reps = 8

	type armResult struct{ prec, ndcg float64 }
	runArm := func(r int, poison bool) armResult {
		w, err := datagen.Generate(chaosProfile, mathx.NewRNG(uint64(1000+r)))
		if err != nil {
			t.Fatal(err)
		}
		train, test := dataset.Split(w.Data, mathx.NewRNG(uint64(2000+r)), 0.8)
		cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
		cfg.Dim = 8
		cfg.Steps = 10 * train.NumPairs()
		cfg.Seed = uint64(3000 + r)
		tr, err := core.NewTrainer(cfg, train)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.SetGuard(guard.Config{Watchdog: true, CheckEvery: 512}, nil); err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		sup := &guard.Supervisor{
			Dir:          dir,
			MaxRollbacks: 4,
			Checkpoint: func() (string, error) {
				return store.WriteCheckpoint(dir, tr.Model(), tr.MetaSnapshot(), 0)
			},
		}
		var after func(int)
		if poison {
			after = fault.PoisonAtStep(tr.Model(), 4*cfg.Steps/10, uint64(4000+r), 3)
		}
		rep, err := sup.Run(tr, guard.RunOptions{
			TotalSteps:      cfg.Steps,
			BatchSteps:      1024,
			CheckpointEvery: 2048,
			AfterBatch:      after,
		})
		if err != nil {
			t.Fatalf("rep %d poison=%v: %v\n%s", r, poison, err, rep.String())
		}
		if poison {
			if len(rep.Rollbacks) == 0 {
				t.Fatalf("rep %d: poisoned run never rolled back", r)
			}
			if lr := rep.Rollbacks[0].LearnRate; lr >= cfg.LearnRate {
				t.Fatalf("rep %d: learning rate %g not backed off from %g", r, lr, cfg.LearnRate)
			}
		} else if len(rep.Rollbacks) != 0 {
			t.Fatalf("rep %d: clean run rolled back:\n%s", r, rep.String())
		}
		if u, v, b := tr.Model().CountNonFinite(); u+v+b > 0 {
			t.Fatalf("rep %d poison=%v: %d non-finite params in final model", r, poison, u+v+b)
		}
		res := eval.Evaluate(tr.Model(), train, test, eval.Options{Ks: []int{5}})
		m := res.MustAt(5)
		return armResult{m.Prec, m.NDCG}
	}

	var clean, recovered [reps]armResult
	for r := 0; r < reps; r++ {
		clean[r] = runArm(r, false)
		recovered[r] = runArm(r, true)
	}
	pick := func(rs [reps]armResult, f func(armResult) float64) []float64 {
		out := make([]float64, reps)
		for i, r := range rs {
			out[i] = f(r)
		}
		return out
	}
	for _, m := range []struct {
		name string
		f    func(armResult) float64
	}{
		{"Prec@5", func(r armResult) float64 { return r.prec }},
		{"NDCG@5", func(r armResult) float64 { return r.ndcg }},
	} {
		a, b := pick(clean, m.f), pick(recovered, m.f)
		res, err := mathx.WelchTTest(a, b)
		if err != nil {
			t.Fatalf("%s: t-test failed: %v", m.name, err)
		}
		t.Logf("%s: clean mean %.5f, recovered mean %.5f, t = %.3f, p = %.4f",
			m.name, mathx.Mean(a), mathx.Mean(b), res.T, res.P)
		if res.P <= 0.01 {
			t.Errorf("%s diverges between clean and poison-recovered runs: t = %.3f, p = %.5f",
				m.name, res.T, res.P)
		}
	}
}

// TestChaosTornCheckpointFallsBack injects the compound failure: poison
// lands in V, and the newest checkpoint generation is torn (truncated)
// before the rollback can use it. Recovery must skip the torn generation
// and restore the next older one.
func TestChaosTornCheckpointFallsBack(t *testing.T) {
	t.Parallel()
	w, err := datagen.Generate(chaosProfile, mathx.NewRNG(71))
	if err != nil {
		t.Fatal(err)
	}
	train, _ := dataset.Split(w.Data, mathx.NewRNG(72), 0.8)
	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Dim = 8
	cfg.Steps = 6 * train.NumPairs()
	cfg.Seed = 73
	tr, err := core.NewTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetGuard(guard.Config{Watchdog: true, CheckEvery: 512}, nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sup := &guard.Supervisor{
		Dir:          dir,
		MaxRollbacks: 3,
		Checkpoint: func() (string, error) {
			return store.WriteCheckpoint(dir, tr.Model(), tr.MetaSnapshot(), 0)
		},
	}
	injected := false
	var torn string
	rep, err := sup.Run(tr, guard.RunOptions{
		TotalSteps:      cfg.Steps,
		BatchSteps:      1024,
		CheckpointEvery: 1024,
		AfterBatch: func(step int) {
			if injected || step < cfg.Steps/2 {
				return
			}
			injected = true
			fault.PoisonItemFactors(tr.Model(), 74, 4)
			torn, err = fault.TearNewestCheckpoint(dir)
			if err != nil {
				t.Errorf("tearing checkpoint: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatalf("Run = %v\n%s", err, rep.String())
	}
	if tr.StepsDone() != cfg.Steps {
		t.Errorf("finished at step %d, want %d", tr.StepsDone(), cfg.Steps)
	}
	if len(rep.Rollbacks) == 0 {
		t.Fatal("compound failure never rolled back")
	}
	ev := rep.Rollbacks[0]
	found := false
	for _, s := range ev.SkippedCheckpoints {
		if s == torn {
			found = true
		}
	}
	if !found {
		t.Errorf("rollback did not skip the torn generation %s (skipped %v)", torn, ev.SkippedCheckpoints)
	}
	if ev.CheckpointPath == torn {
		t.Errorf("rollback restored the torn generation %s", torn)
	}
	if u, v, b := tr.Model().CountNonFinite(); u+v+b > 0 {
		t.Errorf("final model carries %d non-finite params", u+v+b)
	}
}

// TestChaosExplodingLRParallelBacksOff feeds a Hogwild trainer a runaway
// learning-rate schedule. Each divergence trips a guard at a segment
// barrier; each rollback halves the rate; the run must geometrically back
// off until it converges again — all race-detector clean.
func TestChaosExplodingLRParallelBacksOff(t *testing.T) {
	t.Parallel()
	w, err := datagen.Generate(chaosProfile, mathx.NewRNG(81))
	if err != nil {
		t.Fatal(err)
	}
	train, _ := dataset.Split(w.Data, mathx.NewRNG(82), 0.8)
	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Dim = 8
	cfg.Steps = 8 * train.NumPairs()
	cfg.Seed = 83
	pt, err := core.NewParallelTrainer(cfg, train, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.SetGuard(guard.Config{Watchdog: true, CheckEvery: 512}, nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sup := &guard.Supervisor{
		Dir:          dir,
		MaxRollbacks: 16,
		Checkpoint: func() (string, error) {
			return store.WriteCheckpoint(dir, pt.Model(), pt.MetaSnapshot(), 0)
		},
	}
	explode := fault.ExplodingLR(pt, cfg.Steps/2, 100)
	rep, err := sup.Run(pt, guard.RunOptions{
		TotalSteps:      cfg.Steps,
		BatchSteps:      1024,
		CheckpointEvery: 2048,
		AfterBatch:      explode,
	})
	if err != nil {
		t.Fatalf("Run = %v\n%s", err, rep.String())
	}
	if pt.StepsDone() != cfg.Steps {
		t.Errorf("finished at step %d, want %d", pt.StepsDone(), cfg.Steps)
	}
	if len(rep.Rollbacks) == 0 {
		t.Fatal("exploded learning rate never tripped a guard")
	}
	t.Logf("recovered after %d rollback(s); final learning rate %g",
		len(rep.Rollbacks), rep.Rollbacks[len(rep.Rollbacks)-1].LearnRate)
	// Each rollback halves the post-explosion rate of 100×0.05 = 5; the
	// run cannot finish while updates still overflow.
	if lr := rep.Rollbacks[len(rep.Rollbacks)-1].LearnRate; lr >= 5 {
		t.Errorf("final learning rate %g never backed off below the exploded 5", lr)
	}
	if u, v, b := pt.Model().CountNonFinite(); u+v+b > 0 {
		t.Errorf("final model carries %d non-finite params", u+v+b)
	}
}

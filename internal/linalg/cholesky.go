// Package linalg provides the small dense linear-algebra kernels the
// repository needs — chiefly Cholesky factorization for the d×d normal
// equations solved inside WMF's alternating least squares (d ≈ 20, so
// simple dense routines beat anything clever).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64 // N×N, row-major
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Copy returns a deep copy.
func (m *Matrix) Copy() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// AddDiagonal adds v to every diagonal element (ridge term).
func (m *Matrix) AddDiagonal(v float64) {
	for i := 0; i < m.N; i++ {
		m.Data[i*m.N+i] += v
	}
}

// SymRankOne accumulates alpha·x·xᵀ into m (x must have length N). Only
// usable on symmetric accumulations, which is all WMF needs.
func (m *Matrix) SymRankOne(alpha float64, x []float64) {
	n := m.N
	for i := 0; i < n; i++ {
		xi := alpha * x[i]
		row := m.Data[i*n : i*n+n]
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// Cholesky factors a symmetric positive-definite matrix as L·Lᵀ in place
// (lower triangle holds L; the upper triangle is left untouched). It
// returns an error if the matrix is not positive definite within roundoff.
func Cholesky(a *Matrix) error {
	n := a.N
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			l := a.At(j, k)
			d -= l * l
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("linalg: matrix not positive definite at pivot %d (d = %v)", j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	return nil
}

// CholeskySolve solves L·Lᵀ·x = b given the factor produced by Cholesky,
// writing the solution into x (which may alias b).
func CholeskySolve(l *Matrix, b, x []float64) {
	n := l.N
	if x != nil && &x[0] != &b[0] {
		copy(x, b)
	} else {
		x = b
	}
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// SolveSPD solves A·x = b for symmetric positive-definite A, leaving A
// unmodified. It is the one-call entry point WMF uses per user/item.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.N {
		return nil, fmt.Errorf("linalg: b has length %d, want %d", len(b), a.N)
	}
	f := a.Copy()
	if err := Cholesky(f); err != nil {
		return nil, err
	}
	x := make([]float64, a.N)
	CholeskySolve(f, b, x)
	return x, nil
}

// MatVec computes y = A·x for a square matrix.
func MatVec(a *Matrix, x []float64) []float64 {
	n := a.N
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.Data[i*n : i*n+n]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

package linalg

import (
	"testing"
	"testing/quick"

	"clapf/internal/mathx"
)

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4, 2], [2, 3]] = L·Lᵀ with L = [[2, 0], [1, √2]].
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(a.At(0, 0), 2, 1e-12) ||
		!mathx.AlmostEqual(a.At(1, 0), 1, 1e-12) ||
		!mathx.AlmostEqual(a.At(1, 1), 1.4142135623730951, 1e-12) {
		t.Errorf("factor = [[%v, ·], [%v, %v]]", a.At(0, 0), a.At(1, 0), a.At(1, 1))
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3 and −1
	if err := Cholesky(a); err == nil {
		t.Error("indefinite matrix factored without error")
	}
}

func TestSolveSPDRoundTrip(t *testing.T) {
	// Random SPD systems: build A = Mᵀ·M + εI, check A·x ≈ b.
	rng := mathx.NewRNG(1)
	f := func(n8 uint8) bool {
		n := int(n8%10) + 1
		a := NewMatrix(n)
		// SymRankOne accumulation of random vectors yields SPD + ridge.
		for r := 0; r < n+2; r++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			a.SymRankOne(1, x)
		}
		a.AddDiagonal(0.5)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		ax := MatVec(a, x)
		for i := range b {
			if !mathx.AlmostEqual(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveSPDLeavesInputIntact(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	before := append([]float64(nil), a.Data...)
	if _, err := SolveSPD(a, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if a.Data[i] != before[i] {
			t.Fatal("SolveSPD mutated its input matrix")
		}
	}
}

func TestSolveSPDBadLength(t *testing.T) {
	a := NewMatrix(3)
	a.AddDiagonal(1)
	if _, err := SolveSPD(a, []float64{1}); err == nil {
		t.Error("wrong-length b accepted")
	}
}

func TestSymRankOne(t *testing.T) {
	a := NewMatrix(2)
	a.SymRankOne(2, []float64{1, 3})
	want := [][]float64{{2, 6}, {6, 18}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if a.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, a.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskySolveIdentity(t *testing.T) {
	n := 4
	a := NewMatrix(n)
	a.AddDiagonal(1)
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4}
	x := make([]float64, n)
	CholeskySolve(a, b, x)
	for i := range b {
		if !mathx.AlmostEqual(x[i], b[i], 1e-12) {
			t.Errorf("identity solve x[%d] = %v", i, x[i])
		}
	}
}

// Package clapf is a pure-Go implementation of Collaborative
// List-and-Pairwise Filtering (Yu et al., TKDE 2020 / ICDE 2023), a hybrid
// listwise-and-pairwise collaborative-filtering framework for top-k
// recommendation from implicit feedback, together with every substrate and
// baseline its evaluation depends on.
//
// The public API lives in this root package:
//
//	data, _ := clapf.GenerateDataset(clapf.ProfileML100K, 0.25, 1)
//	train, test := clapf.Split(data, 42)
//	cfg := clapf.DefaultConfig(clapf.MAP, train.NumPairs())
//	trainer, _ := clapf.NewTrainer(cfg, train)
//	trainer.Run()
//	recs := clapf.Recommend(trainer.Model(), train, user, 10)
//	result := clapf.Evaluate(trainer.Model(), train, test, clapf.EvalOptions{})
//
// Everything below it — matrix factorization, samplers, metrics, the
// baseline zoo (BPR, MPR, CLiMF, WMF, PopRank, RandomWalk, NeuMF, NeuPR,
// DeepICF), the synthetic dataset generator, and the experiment harness
// that regenerates the paper's tables and figures — lives under internal/
// and is reachable through this facade or the cmd/ binaries.
package clapf

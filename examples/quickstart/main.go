// Quickstart: the smallest end-to-end CLAPF program — generate an
// implicit-feedback dataset, train CLAPF-MAP, and print top-10
// recommendations for a user.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clapf"
)

func main() {
	// A quarter-scale MovieLens-100K-shaped world.
	data, err := clapf.GenerateDataset(clapf.ProfileML100K, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	train, test := clapf.Split(data, 7)
	fmt.Printf("dataset %s: %d users × %d items, %d train / %d test pairs\n",
		data.Name(), data.NumUsers(), data.NumItems(), train.NumPairs(), test.NumPairs())

	// CLAPF-MAP with the paper's defaults (λ = 0.4 on ML100K).
	cfg := clapf.DefaultConfig(clapf.MAP, train.NumPairs())
	cfg.Steps = 120 * train.NumPairs()
	trainer, err := clapf.NewTrainer(cfg, train)
	if err != nil {
		log.Fatal(err)
	}
	trainer.Run()

	const user = 3
	fmt.Printf("\ntop-10 recommendations for user %d:\n", user)
	for rank, rec := range clapf.Recommend(trainer.Model(), train, user, 10) {
		hit := " "
		if test.IsPositive(user, rec.Item) {
			hit = "✓" // the held-out future confirms this one
		}
		fmt.Printf("  %2d. item %-5d score %.3f %s\n", rank+1, rec.Item, rec.Score, hit)
	}

	res := clapf.Evaluate(trainer.Model(), train, test, clapf.EvalOptions{Ks: []int{5, 10}})
	fmt.Printf("\nover %d test users: NDCG@5 %.3f, Recall@10 %.3f, MAP %.3f, AUC %.3f\n",
		res.Users, res.MustAt(5).NDCG, res.MustAt(10).Recall, res.MAP, res.AUC)
}

// Coldstart: the day-2 serving problem — a brand-new user shows up with a
// handful of interactions and no row in the trained model. This example
// trains CLAPF+ once, then onboards new users by folding their history
// into the frozen item space (one ALS half-step) and recommending
// immediately, and shows item-to-item navigation via factor cosine.
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"

	"clapf"
)

func main() {
	data, err := clapf.GenerateDataset(clapf.ProfileML100K, 0.5, 51)
	if err != nil {
		log.Fatal(err)
	}
	cfg := clapf.DefaultConfig(clapf.MAP, data.NumPairs())
	cfg.Lambda = 0.3
	cfg.Steps = 120 * data.NumPairs()
	cfg.Sampler.Strategy = clapf.SamplerDSS
	cfg.Seed = 52
	trainer, err := clapf.NewTrainer(cfg, data)
	if err != nil {
		log.Fatal(err)
	}
	trainer.Run()
	model := trainer.Model()
	fmt.Printf("trained on %d users × %d items\n\n", model.NumUsers(), model.NumItems())

	// A new user arrives having interacted with an existing user's taste
	// profile — borrow user 7's first items as the new user's history.
	history := data.Positives(7)
	if len(history) > 5 {
		history = history[:5]
	}
	fmt.Printf("new user history: %v\n", history)

	uf, err := clapf.FoldInUser(model, history, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommendations for the folded-in user:")
	for rank, rec := range clapf.RecommendFoldIn(model, uf, history, 8) {
		marker := " "
		if data.IsPositive(7, rec.Item) {
			marker = "≈" // matches the donor user's actual future taste
		}
		fmt.Printf("  %d. item %-5d score %.3f %s\n", rank+1, rec.Item, rec.Score, marker)
	}

	// Item-to-item: "because you liked X".
	anchor := history[0]
	fmt.Printf("\nitems similar to item %d (factor cosine):\n", anchor)
	sims, err := clapf.SimilarItems(model, anchor, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sims {
		fmt.Printf("  item %-5d cosine %.3f\n", s.Item, s.Score)
	}
}

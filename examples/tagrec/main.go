// Tagrec: the tag-recommendation scenario (the paper's UserTag corpus) —
// suggest tags a user is likely to apply next — demonstrating the
// production path of the library: train with the DSS sampler (CLAPF+),
// persist the model to disk, reload it in a fresh process, and serve
// recommendations from the reloaded copy.
//
//	go run ./examples/tagrec
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clapf"
)

func main() {
	data, err := clapf.GenerateDataset(clapf.ProfileUserTag, 0.15, 21)
	if err != nil {
		log.Fatal(err)
	}
	train, test := clapf.Split(data, 22)
	fmt.Printf("tag world: %d users × %d tags, %d train pairs\n",
		data.NumUsers(), data.NumItems(), train.NumPairs())

	// CLAPF+ : the MAP variant with the Double Sampling Strategy.
	cfg := clapf.DefaultConfig(clapf.MAP, train.NumPairs())
	cfg.Lambda = 0.3
	cfg.Steps = 120 * train.NumPairs()
	cfg.Sampler.Strategy = clapf.SamplerDSS
	cfg.Seed = 23
	trainer, err := clapf.NewTrainer(cfg, train)
	if err != nil {
		log.Fatal(err)
	}
	trainer.Run()

	// Persist, then reload as a serving process would.
	path := filepath.Join(os.TempDir(), "clapf-tagrec.model")
	if err := clapf.SaveModelFile(path, trainer.Model()); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model persisted: %s (%.1f KiB, checksummed)\n", path, float64(info.Size())/1024)

	served, err := clapf.LoadModelFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	for _, user := range []int32{0, 17, 42} {
		fmt.Printf("\nuser %d already tagged %d items; suggested next tags:\n",
			user, train.NumPositives(user))
		for rank, rec := range clapf.Recommend(served, train, user, 5) {
			hit := ""
			if test.IsPositive(user, rec.Item) {
				hit = "  (confirmed by held-out data)"
			}
			fmt.Printf("  %d. tag %-5d score %.3f%s\n", rank+1, rec.Item, rec.Score, hit)
		}
	}

	res := clapf.Evaluate(served, train, test, clapf.EvalOptions{Ks: []int{5}})
	fmt.Printf("\nreloaded model quality: Prec@5 %.3f, NDCG@5 %.3f, MRR %.3f over %d users\n",
		res.MustAt(5).Prec, res.MustAt(5).NDCG, res.MRR, res.Users)
}

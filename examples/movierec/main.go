// Movierec: the movie-recommendation scenario the paper's introduction
// motivates — users implicitly reveal preferences through watch records,
// and we want the top-k list, not a rating predictor. This example trains
// BPR (the pairwise baseline) and both CLAPF variants on the same
// MovieLens-shaped world and compares them head-to-head, illustrating the
// paper's headline: bringing the listwise pair into the pairwise objective
// improves top-k ranking.
//
//	go run ./examples/movierec
package main

import (
	"fmt"
	"log"
	"time"

	"clapf"
)

func main() {
	data, err := clapf.GenerateDataset(clapf.ProfileML100K, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	train, test := clapf.Split(data, 12)
	fmt.Printf("movie world: %d users × %d movies, %d train pairs (density %.2f%%)\n\n",
		data.NumUsers(), data.NumItems(), train.NumPairs(), 100*data.Density())

	type contender struct {
		name string
		cfg  clapf.Config
	}
	epochs := 240
	contenders := []contender{
		{"BPR (λ=0)", withLambda(clapf.DefaultConfig(clapf.MAP, train.NumPairs()), 0, epochs, train.NumPairs())},
		{"CLAPF-MAP (λ=0.3)", withLambda(clapf.DefaultConfig(clapf.MAP, train.NumPairs()), 0.3, epochs, train.NumPairs())},
		{"CLAPF-MRR (λ=0.1)", withLambda(clapf.DefaultConfig(clapf.MRR, train.NumPairs()), 0.1, epochs, train.NumPairs())},
	}

	fmt.Printf("%-20s %8s %8s %8s %8s %10s\n", "model", "Prec@5", "NDCG@5", "MAP", "MRR", "train")
	for _, c := range contenders {
		trainer, err := clapf.NewTrainer(c.cfg, train)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		trainer.Run()
		elapsed := time.Since(start)
		res := clapf.Evaluate(trainer.Model(), train, test, clapf.EvalOptions{Ks: []int{5}})
		m := res.MustAt(5)
		fmt.Printf("%-20s %8.4f %8.4f %8.4f %8.4f %10s\n",
			c.name, m.Prec, m.NDCG, res.MAP, res.MRR, elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nλ = 0 reduces CLAPF exactly to BPR; an interior λ adds the listwise")
	fmt.Println("(observed, observed) ranking pair and lifts the top-k metrics — the")
	fmt.Println("paper's Figure 3 sweeps this trade-off in full.")
}

func withLambda(cfg clapf.Config, lambda float64, epochs, pairs int) clapf.Config {
	cfg.Lambda = lambda
	cfg.Steps = epochs * pairs
	cfg.Seed = 5
	return cfg
}

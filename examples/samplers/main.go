// Samplers: a miniature of the paper's Figure 4 — train CLAPF-MAP under
// the four sampling strategies (Uniform, Positive-only, Negative-only, and
// the full Double Sampling Strategy) and print the test-MAP trajectory of
// each, showing where rank-aware sampling buys convergence speed.
//
//	go run ./examples/samplers
package main

import (
	"fmt"
	"log"

	"clapf"
)

func main() {
	data, err := clapf.GenerateDataset(clapf.ProfileML100K, 1.0, 31)
	if err != nil {
		log.Fatal(err)
	}
	train, test := clapf.Split(data, 32)
	fmt.Printf("world: %d users × %d items, %d train pairs\n\n",
		data.NumUsers(), data.NumItems(), train.NumPairs())

	strategies := []clapf.SamplerStrategy{
		clapf.SamplerUniform, clapf.SamplerPositive, clapf.SamplerNegative, clapf.SamplerDSS,
	}
	const checkpoints = 6
	totalSteps := 240 * train.NumPairs()

	// Header.
	fmt.Printf("%-10s", "steps")
	for _, s := range strategies {
		fmt.Printf("%10s", s.String())
	}
	fmt.Println("   (test MAP)")

	// One trainer per strategy, advanced in lockstep.
	trainers := make([]*clapf.Trainer, len(strategies))
	for i, s := range strategies {
		cfg := clapf.DefaultConfig(clapf.MAP, train.NumPairs())
		cfg.Lambda = 0.3
		cfg.Steps = totalSteps
		cfg.Sampler.Strategy = s
		cfg.Seed = 33
		trainers[i], err = clapf.NewTrainer(cfg, train)
		if err != nil {
			log.Fatal(err)
		}
	}
	for c := 1; c <= checkpoints; c++ {
		mark := totalSteps * c * c / (checkpoints * checkpoints)
		fmt.Printf("%-10d", mark)
		for _, tr := range trainers {
			tr.RunSteps(mark - tr.StepsDone())
			res := clapf.Evaluate(tr.Model(), train, test, clapf.EvalOptions{Ks: []int{5}, MaxUsers: 300})
			fmt.Printf("%10.4f", res.MAP)
		}
		fmt.Println()
	}

	fmt.Println("\nDSS draws a weak observed item k and a hard unobserved item j from")
	fmt.Println("rank-ordered lists, keeping the gradient scalar 1−σ(R) away from zero;")
	fmt.Println("the single-sided ablations show each half's contribution.")
}

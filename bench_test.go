package clapf

// The bench harness regenerates every table and figure of the paper's
// evaluation (§6) at reduced scale, reporting the headline metrics through
// b.ReportMetric so `go test -bench=.` output doubles as the reproduction
// record:
//
//	BenchmarkTable1Datasets    — Table 1 dataset statistics
//	BenchmarkTable2/<dataset>  — Table 2 method comparison (all six corpora)
//	BenchmarkFig2TopK          — Figure 2 top-k sweep
//	BenchmarkFig3LambdaSweep   — Figure 3 λ trade-off
//	BenchmarkFig4Convergence   — Figure 4 sampler convergence
//
// plus the ablations DESIGN.md calls out and microbenchmarks of the hot
// paths. EXPERIMENTS.md records a full-scale ML100K run next to the
// paper's numbers.

import (
	"strings"
	"testing"

	"clapf/internal/core"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/experiments"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/rank"
	"clapf/internal/sampling"
)

// benchBudget keeps the full -bench=. sweep to minutes on one core.
func benchBudget() experiments.BudgetConfig {
	return experiments.BudgetConfig{
		EpochEquivalents: 360,
		CLiMFEpochs:      20,
		NeuralEpochs:     2,
		WMFSweeps:        8,
		RandomWalkWalks:  50,
	}
}

func benchSetup(b *testing.B, name string, scale float64) experiments.Setup {
	b.Helper()
	s, err := experiments.DefaultSetup(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	s.Replicates = 1
	s.EvalMaxUsers = 200
	s.Ks = []int{3, 5, 10, 15, 20}
	s.Budget = benchBudget()
	return s
}

// BenchmarkTable1Datasets regenerates Table 1: all six corpus profiles are
// synthesized and their split statistics computed.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, err := experiments.Table1Stats(datagen.Table1Profiles, 0.05, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(stats) != 6 {
			b.Fatalf("got %d datasets", len(stats))
		}
	}
}

// benchScales shrinks each corpus to a single-core-friendly size while
// keeping Table 1's density ordering.
// The three dense corpora keep enough per-user history (≈ 11–29 train
// pairs/user) for CLAPF's listwise pair to carry signal; see the
// reproduction notes in DESIGN.md on history length.
var benchScales = map[string]float64{
	"ML100K":  0.50,
	"ML1M":    0.30,
	"UserTag": 0.30,
	"ML20M":   0.030,
	"Flixter": 0.025,
	"Netflix": 0.010,
}

// BenchmarkTable2 regenerates Table 2 per dataset: all thirteen methods
// trained and evaluated; the CLAPF-vs-BPR NDCG@5 ratio — the paper's
// headline effect — is reported as a metric.
func BenchmarkTable2(b *testing.B) {
	for _, profile := range datagen.Table1Profiles {
		profile := profile
		b.Run(profile.Name, func(b *testing.B) {
			s := benchSetup(b, profile.Name, benchScales[profile.Name])
			methods := experiments.Table2Methods(s.Profile.Name, s.Budget)
			for i := 0; i < b.N; i++ {
				rows, _, err := experiments.RunComparison(s, methods)
				if err != nil {
					b.Fatal(err)
				}
				report := func(name, metric string, v float64) {
					b.ReportMetric(v, name+"_"+metric)
				}
				var bprNDCG, clapfNDCG float64
				for _, r := range rows {
					switch {
					case r.Method == "BPR":
						bprNDCG = r.NDCG5.Mean
						report("bpr", "ndcg5", r.NDCG5.Mean)
					case strings.HasPrefix(r.Method, "CLAPF(") && strings.HasSuffix(r.Method, "-MAP"):
						clapfNDCG = r.NDCG5.Mean
						report("clapfmap", "ndcg5", r.NDCG5.Mean)
						report("clapfmap", "map", r.MAP.Mean)
					case r.Method == "CLiMF":
						report("climf", "ndcg5", r.NDCG5.Mean)
					}
				}
				if bprNDCG > 0 {
					b.ReportMetric(clapfNDCG/bprNDCG, "clapf/bpr_ndcg5")
				}
			}
		})
	}
}

// BenchmarkFig2TopK regenerates Figure 2: the Recall@k / NDCG@k sweep over
// k ∈ {3, 5, 10, 15, 20} for a representative method subset.
func BenchmarkFig2TopK(b *testing.B) {
	s := benchSetup(b, "ML100K", benchScales["ML100K"])
	all := experiments.Table2Methods(s.Profile.Name, s.Budget)
	var methods []experiments.Method
	for _, m := range all {
		switch {
		case m.Name == "PopRank" || m.Name == "BPR" || m.Name == "MPR" ||
			strings.HasPrefix(m.Name, "CLAPF("):
			methods = append(methods, m)
		}
	}
	for i := 0; i < b.N; i++ {
		_, curves, err := experiments.RunComparison(s, methods)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			if strings.HasPrefix(c.Method, "CLAPF(") && strings.HasSuffix(c.Method, "-MAP") {
				// Recall@20 — the right edge of Figure 2's curves.
				b.ReportMetric(c.Recall[len(c.Recall)-1], "clapfmap_recall20")
			}
		}
	}
}

// BenchmarkFig3LambdaSweep regenerates Figure 3: CLAPF's λ trade-off from
// pure BPR (λ=0) to pure listwise (λ=1) for both variants. The reported
// metric is the best-interior-λ NDCG@5 advantage over λ=0.
func BenchmarkFig3LambdaSweep(b *testing.B) {
	s := benchSetup(b, "ML100K", benchScales["ML100K"])
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunLambdaSweep(s, sampling.MAP)
		if err != nil {
			b.Fatal(err)
		}
		bprNDCG := points[0].NDCG5
		best := 0.0
		for _, p := range points[1 : len(points)-1] {
			if p.NDCG5 > best {
				best = p.NDCG5
			}
		}
		b.ReportMetric(best/bprNDCG, "bestlambda/bpr_ndcg5")
		b.ReportMetric(points[10].NDCG5/bprNDCG, "lambda1/bpr_ndcg5")
	}
}

// BenchmarkFig4Convergence regenerates Figure 4: CLAPF under the four
// sampling strategies with test MAP traced along training. The reported
// metric compares DSS against Uniform at the one-third checkpoint, where
// the sampler gap is widest.
func BenchmarkFig4Convergence(b *testing.B) {
	s := benchSetup(b, "ML100K", benchScales["ML100K"])
	for i := 0; i < b.N; i++ {
		traces, err := experiments.RunConvergence(s, sampling.MAP, 6)
		if err != nil {
			b.Fatal(err)
		}
		var uni, dss []float64
		for _, tr := range traces {
			switch tr.Sampler {
			case sampling.Uniform:
				uni = tr.MAP
			case sampling.DSS:
				dss = tr.MAP
			}
		}
		mid := len(uni) / 2
		if uni[mid] > 0 {
			b.ReportMetric(dss[mid]/uni[mid], "dss/uniform_midmap")
		}
		b.ReportMetric(dss[len(dss)-1], "dss_finalmap")
	}
}

// --- Ablation benches (design choices DESIGN.md calls out) ---

// benchWorld builds one shared mid-sized training world for ablations.
func benchWorld(b *testing.B) (*dataset.Dataset, *dataset.Dataset) {
	b.Helper()
	p, err := datagen.ProfileByName("ML100K")
	if err != nil {
		b.Fatal(err)
	}
	w, err := datagen.Generate(p.Scaled(0.35), mathx.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	train, test := dataset.Split(w.Data, mathx.NewRNG(2), 0.5)
	return train, test
}

// BenchmarkAblationRefresh measures the DSS rank-list refresh period's
// cost/quality trade-off: the paper's m·log m steps versus refreshing 16×
// more and 16× less often.
func BenchmarkAblationRefresh(b *testing.B) {
	train, test := benchWorld(b)
	m := train.NumItems()
	lg := 1
	for v := m; v > 1; v >>= 1 {
		lg++
	}
	paper := m * lg
	for _, tc := range []struct {
		name   string
		period int
	}{
		{"16xOften", paper / 16},
		{"PaperMLogM", paper},
		{"16xRare", paper * 16},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
				cfg.Lambda = 0.3
				cfg.Steps = 60 * train.NumPairs()
				cfg.Sampler.Strategy = sampling.DSS
				cfg.Sampler.RefreshEvery = tc.period
				tr, err := core.NewTrainer(cfg, train)
				if err != nil {
					b.Fatal(err)
				}
				tr.Run()
				res := eval.Evaluate(tr.Model(), train, test, eval.Options{Ks: []int{5}, MaxUsers: 150, RNG: mathx.NewRNG(3)})
				b.ReportMetric(res.MAP, "map")
			}
		})
	}
}

// BenchmarkAblationDirectAP contrasts the per-update cost of optimizing
// the direct smoothed AP of Eq. 9 — a full O((n_u⁺)²·d) user gradient, the
// CLiMF-style listwise path §4.1 rejects — against one O(d) sampled CLAPF
// triple step that the lower bound enables.
func BenchmarkAblationDirectAP(b *testing.B) {
	train, _ := benchWorld(b)
	model := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(), Dim: 20, UseBias: true,
	})
	model.InitGaussian(mathx.NewRNG(5), 0.1)
	users := train.UsersWithAtLeast(2)

	b.Run("DirectEq9UserGradient", func(b *testing.B) {
		grad := make([]float64, model.Dim())
		for i := 0; i < b.N; i++ {
			directAPUserGradient(model, train, users[i%len(users)], grad)
		}
	})
	b.Run("SampledTripleStep", func(b *testing.B) {
		cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
		cfg.Steps = 1 << 30
		tr, err := core.NewTrainer(cfg, train)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Step()
		}
	})
}

// directAPUserGradient computes ∂AP_u/∂U_u for the smoothed AP of Eq. 9 —
// the quadratic-in-n_u⁺ work a direct listwise optimizer pays per user.
func directAPUserGradient(m *mf.Model, d *dataset.Dataset, u int32, grad []float64) {
	obs := d.Positives(u)
	n := len(obs)
	mathx.Fill(grad, 0)
	if n == 0 {
		return
	}
	scores := make([]float64, n)
	for a, it := range obs {
		scores[a] = m.Score(u, it)
	}
	// AP_u = (1/n) Σ_a σ(f_a) Σ_b σ(f_b − f_a); chain rule through both
	// score arguments.
	for a := 0; a < n; a++ {
		va := m.ItemFactors(obs[a])
		var inner float64
		for bIdx := 0; bIdx < n; bIdx++ {
			inner += mathx.Sigmoid(scores[bIdx] - scores[a])
		}
		// ∂/∂f_a of the outer σ(f_a) term.
		coefA := mathx.SigmoidGrad(scores[a]) * inner
		for bIdx := 0; bIdx < n; bIdx++ {
			g := mathx.SigmoidGrad(scores[bIdx] - scores[a])
			// f_b − f_a appears in row a (−) and f_a − f_b in row b (+).
			coefA += mathx.Sigmoid(scores[a])*(-g) + mathx.Sigmoid(scores[bIdx])*g
		}
		mathx.AXPY(coefA/float64(n), va, grad)
	}
}

// BenchmarkAblationBias compares CLAPF with and without the per-item bias
// term of the predictor f_ui = U_u·V_i + b_i.
func BenchmarkAblationBias(b *testing.B) {
	train, test := benchWorld(b)
	for _, tc := range []struct {
		name string
		bias bool
	}{{"WithBias", true}, {"NoBias", false}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
				cfg.Lambda = 0.3
				cfg.UseBias = tc.bias
				cfg.Steps = 60 * train.NumPairs()
				tr, err := core.NewTrainer(cfg, train)
				if err != nil {
					b.Fatal(err)
				}
				tr.Run()
				res := eval.Evaluate(tr.Model(), train, test, eval.Options{Ks: []int{5}, MaxUsers: 150, RNG: mathx.NewRNG(3)})
				b.ReportMetric(res.MustAt(5).NDCG, "ndcg5")
			}
		})
	}
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkSGDStepUniform measures one CLAPF SGD step under uniform
// sampling (the per-step cost Table 2's time column is built from).
func BenchmarkSGDStepUniform(b *testing.B) {
	train, _ := benchWorld(b)
	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Steps = 1 << 30
	tr, err := core.NewTrainer(cfg, train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step()
	}
}

// BenchmarkSGDStepDSS measures one CLAPF SGD step under the DSS sampler,
// including amortized rank-list refreshes.
func BenchmarkSGDStepDSS(b *testing.B) {
	train, _ := benchWorld(b)
	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Steps = 1 << 30
	cfg.Sampler.Strategy = sampling.DSS
	tr, err := core.NewTrainer(cfg, train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step()
	}
}

// BenchmarkScoreAll measures scoring every item for one user — the
// evaluation protocol's inner loop.
func BenchmarkScoreAll(b *testing.B) {
	train, _ := benchWorld(b)
	model := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(), Dim: 20, UseBias: true,
	})
	model.InitGaussian(mathx.NewRNG(7), 0.1)
	out := make([]float64, train.NumItems())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ScoreAll(int32(i%train.NumUsers()), out)
	}
}

// BenchmarkTopK measures bounded top-k selection over a full score vector.
func BenchmarkTopK(b *testing.B) {
	rng := mathx.NewRNG(9)
	scores := make([]float64, 20000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rank.TopK(scores, 20, nil)
	}
}

// BenchmarkEvaluate measures the full-ranking evaluation of one mid-sized
// split.
func BenchmarkEvaluate(b *testing.B) {
	train, test := benchWorld(b)
	model := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(), Dim: 20, UseBias: true,
	})
	model.InitGaussian(mathx.NewRNG(11), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Evaluate(model, train, test, eval.Options{Ks: []int{5}, MaxUsers: 100, RNG: mathx.NewRNG(uint64(i))})
	}
}

package clapf_test

import (
	"fmt"

	"clapf"
)

// ExampleGenerateDataset synthesizes a small MovieLens-100K-shaped world.
func ExampleGenerateDataset() {
	data, err := clapf.GenerateDataset(clapf.ProfileML100K, 0.1, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println(data.Name(), data.NumUsers(), data.NumItems())
	// Output: ML100K 94 168
}

// ExampleSplit shows the paper's 50/50 evaluation split.
func ExampleSplit() {
	data, err := clapf.NewDataset("tiny", 2, 4, []clapf.Interaction{
		{User: 0, Item: 0}, {User: 0, Item: 1}, {User: 1, Item: 2}, {User: 1, Item: 3},
	})
	if err != nil {
		panic(err)
	}
	train, test := clapf.Split(data, 7)
	fmt.Println(train.NumPairs()+test.NumPairs() == data.NumPairs())
	// Output: true
}

// ExampleNewTrainer trains CLAPF-MAP end to end and recommends.
func ExampleNewTrainer() {
	data, err := clapf.GenerateDataset(clapf.ProfileML100K, 0.1, 42)
	if err != nil {
		panic(err)
	}
	cfg := clapf.DefaultConfig(clapf.MAP, data.NumPairs())
	cfg.Steps = 5000
	cfg.Seed = 1
	trainer, err := clapf.NewTrainer(cfg, data)
	if err != nil {
		panic(err)
	}
	trainer.Run()
	recs := clapf.Recommend(trainer.Model(), data, 0, 3)
	fmt.Println(len(recs))
	// Output: 3
}

// ExampleDatasetFromRatings applies the paper's >3-star preprocessing.
func ExampleDatasetFromRatings() {
	d, err := clapf.DatasetFromRatings("r", 1, 3, []clapf.Rating{
		{User: 0, Item: 0, Score: 5},
		{User: 0, Item: 1, Score: 3}, // not > 3: dropped
		{User: 0, Item: 2, Score: 4},
	}, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(d.NumPairs())
	// Output: 2
}

GO ?= go

.PHONY: build test check fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: gofmt cleanliness, go vet, and the full
# suite under the race detector (the obs package is lock-free atomics;
# -race is what keeps it honest).
check:
	sh scripts/check.sh

fmt:
	gofmt -w .

# bench measures Hogwild training and parallel-eval scaling across worker
# counts (BENCH_parallel.json), serve-path throughput for the single,
# batch, and cached request paths plus the float32-vs-float64 kernel and
# quantization-parity arms (BENCH_serve.json), guardrail overhead
# (BENCH_guard.json), request-tracing overhead with the slow-capture
# certification (BENCH_trace.json), sharded-serving availability under
# chaos — shard kill, latency, torn responses (BENCH_cluster.json) —
# exact-vs-IVF retrieval throughput with recall@10 on the full-size
# ML20M catalog (BENCH_retrieval.json), and feedback-WAL append
# throughput plus online-update serve overhead (BENCH_ingest.json).
bench:
	sh scripts/bench.sh

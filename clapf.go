package clapf

import (
	"io"

	"clapf/internal/core"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/rank"
	"clapf/internal/sampling"
	"clapf/internal/store"
)

// Variant selects which rank-biased measure CLAPF smooths and optimizes.
type Variant = sampling.Objective

// The two CLAPF instantiations of the paper.
const (
	// MAP optimizes the smoothed Mean Average Precision objective
	// (CLAPF-MAP, Eqs. 15–18).
	MAP = sampling.MAP
	// MRR optimizes the smoothed Mean Reciprocal Rank objective
	// (CLAPF-MRR, Eqs. 19–21).
	MRR = sampling.MRR
)

// SamplerStrategy selects how training triples are drawn.
type SamplerStrategy = sampling.Strategy

// Sampler strategies; DSS is the paper's Double Sampling Strategy
// ("CLAPF+" rows in Table 2).
const (
	SamplerUniform  = sampling.Uniform
	SamplerDSS      = sampling.DSS
	SamplerPositive = sampling.PositiveOnly
	SamplerNegative = sampling.NegativeOnly
)

// Dataset is an immutable implicit-feedback dataset.
type Dataset = dataset.Dataset

// Interaction is one observed (user, item) pair.
type Interaction = dataset.Interaction

// Rating is an explicit-feedback record for preprocessing.
type Rating = dataset.Rating

// NewDataset builds a dataset from positive interactions.
func NewDataset(name string, numUsers, numItems int, pairs []Interaction) (*Dataset, error) {
	return dataset.FromInteractions(name, numUsers, numItems, pairs)
}

// DatasetFromRatings applies the paper's preprocessing: ratings strictly
// above threshold become positive implicit feedback.
func DatasetFromRatings(name string, numUsers, numItems int, ratings []Rating, threshold float64) (*Dataset, error) {
	return dataset.FromRatings(name, numUsers, numItems, ratings, threshold)
}

// ReadDatasetTSV parses the TSV format written by WriteDatasetTSV.
func ReadDatasetTSV(r io.Reader) (*Dataset, error) { return dataset.ReadTSV(r) }

// WriteDatasetTSV serializes a dataset as tab-separated pairs.
func WriteDatasetTSV(w io.Writer, d *Dataset) error { return dataset.WriteTSV(w, d) }

// Split divides a dataset 50/50 into train and test halves under the given
// seed, the paper's evaluation protocol.
func Split(d *Dataset, seed uint64) (train, test *Dataset) {
	return dataset.Split(d, mathx.NewRNG(seed), 0.5)
}

// SplitFrac divides a dataset with an arbitrary training fraction.
func SplitFrac(d *Dataset, seed uint64, trainFrac float64) (train, test *Dataset) {
	return dataset.Split(d, mathx.NewRNG(seed), trainFrac)
}

// Profile names a synthetic corpus shape mirroring the paper's Table 1.
type Profile = datagen.Profile

// The six Table 1 corpus profiles.
var (
	ProfileML100K  = mustProfile("ML100K")
	ProfileML1M    = mustProfile("ML1M")
	ProfileUserTag = mustProfile("UserTag")
	ProfileML20M   = mustProfile("ML20M")
	ProfileFlixter = mustProfile("Flixter")
	ProfileNetflix = mustProfile("Netflix")
)

func mustProfile(name string) Profile {
	p, err := datagen.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Profiles returns all six Table 1 profiles.
func Profiles() []Profile { return append([]Profile(nil), datagen.Table1Profiles...) }

// ProfileByName resolves a Table 1 profile case-insensitively.
func ProfileByName(name string) (Profile, error) { return datagen.ProfileByName(name) }

// GenerateDataset synthesizes an implicit-feedback dataset with the
// profile's statistical shape, scaled down by scale (0 < scale < 1; 0 or 1
// keeps full size).
func GenerateDataset(p Profile, scale float64, seed uint64) (*Dataset, error) {
	w, err := datagen.Generate(p.Scaled(scale), mathx.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	return w.Data, nil
}

// Config parameterizes a CLAPF trainer; see DefaultConfig.
type Config = core.Config

// SamplerConfig tunes triple sampling inside a Config.
type SamplerConfig = sampling.TripleConfig

// DefaultConfig returns the paper's baseline hyper-parameters for the
// variant and a step budget of 30 passes over trainPairs.
func DefaultConfig(v Variant, trainPairs int) Config {
	return core.DefaultConfig(v, trainPairs)
}

// Trainer learns a CLAPF model by stochastic gradient descent.
type Trainer = core.Trainer

// TrainStats is one training-telemetry snapshot (smoothed loss, gradient
// magnitude, steps/sec) delivered to a Trainer.SetStatsHook callback.
type TrainStats = core.TrainStats

// StatsHook receives TrainStats snapshots during training.
type StatsHook = core.StatsHook

// NewTrainer validates cfg and prepares a trainer over the training split.
func NewTrainer(cfg Config, train *Dataset) (*Trainer, error) {
	return core.NewTrainer(cfg, train)
}

// TrainerState is a trainer's resumable non-parameter state — what
// Trainer.Snapshot captures and Trainer.Restore replays. Together with
// the model parameters it makes training crash-safe.
type TrainerState = core.TrainerState

// SamplerState is the triple sampler's resumable state inside a
// TrainerState.
type SamplerState = sampling.SamplerState

// ParallelTrainer learns a CLAPF model with lock-free Hogwild SGD across
// several worker goroutines; see NewParallelTrainer.
type ParallelTrainer = core.ParallelTrainer

// ParallelTrainerState is a parallel trainer's resumable non-parameter
// state — the multi-worker analogue of TrainerState.
type ParallelTrainerState = core.ParallelTrainerState

// ParallelWorkerState is one worker's RNG streams inside a
// ParallelTrainerState.
type ParallelWorkerState = core.ParallelWorkerState

// WorkerStat reports one training worker's lifetime throughput.
type WorkerStat = core.WorkerStat

// NewParallelTrainer validates cfg and prepares a trainer that shards
// users across numWorkers goroutines. Multi-worker runs are statistically
// equivalent to serial training but not bit-reproducible; see the
// internal/core package documentation.
func NewParallelTrainer(cfg Config, train *Dataset, numWorkers int) (*ParallelTrainer, error) {
	return core.NewParallelTrainer(cfg, train, numWorkers)
}

// Model is a learned matrix-factorization model: Score, ScoreAll, and the
// factor accessors.
type Model = mf.Model

// SaveModel persists a model to w in the versioned binary format.
func SaveModel(w io.Writer, m *Model) error { return store.Save(w, m) }

// LoadModel reads a model written by SaveModel, verifying its checksum.
func LoadModel(r io.Reader) (*Model, error) { return store.Load(r) }

// SaveModelFile atomically writes a model to path.
func SaveModelFile(path string, m *Model) error { return store.SaveFile(path, m) }

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Model, error) { return store.LoadFile(path) }

// Scorer is anything that can score all items for a user — every model in
// this repository.
type Scorer = eval.Scorer

// EvalOptions tunes Evaluate.
type EvalOptions = eval.Options

// Result aggregates ranking metrics over evaluated users.
type Result = eval.Result

// Evaluate runs the paper's full-ranking protocol: for every test user,
// all training-unobserved items are ranked and Precision@k, Recall@k,
// F1@k, 1-call@k, NDCG@k, MAP, MRR, and AUC are averaged.
func Evaluate(s Scorer, train, test *Dataset, opts EvalOptions) Result {
	return eval.Evaluate(s, train, test, opts)
}

// Recommendation is one ranked item with its predicted score.
type Recommendation struct {
	Item  int32
	Score float64
}

// Recommend returns the top-k unobserved items for user u under the model,
// best first — the serving-path call of §4.3.
func Recommend(m *Model, train *Dataset, u int32, k int) []Recommendation {
	scores := make([]float64, m.NumItems())
	m.ScoreAll(u, scores)
	top := rank.TopK(scores, k, func(i int32) bool { return train.IsPositive(u, i) })
	out := make([]Recommendation, len(top))
	for idx, e := range top {
		out[idx] = Recommendation{Item: e.Item, Score: e.Score}
	}
	return out
}

// RatingFormat names a supported on-disk ratings layout for LoadRatings.
type RatingFormat = dataset.RatingFormat

// Supported real-corpus formats.
const (
	// FormatML100K parses MovieLens-100K "u.data" (tab-separated).
	FormatML100K = dataset.FormatML100K
	// FormatML1M parses MovieLens-1M "ratings.dat" ("::"-separated).
	FormatML1M = dataset.FormatML1M
	// FormatCSV parses "user,item,rating[,timestamp]" with optional header.
	FormatCSV = dataset.FormatCSV
)

// IDMapping translates the dense ids LoadRatings assigns back to the
// source file's identifiers.
type IDMapping = dataset.IDMapping

// LoadRatings parses a real ratings file (MovieLens and friends), applies
// the paper's >threshold preprocessing, and returns the implicit dataset
// with its id mapping — so every experiment in this repository can run on
// the actual corpora when you have them.
func LoadRatings(r io.Reader, format RatingFormat, name string, threshold float64) (*Dataset, *IDMapping, error) {
	return dataset.LoadRatings(r, format, name, threshold)
}

// FoldInUser computes factors for a user unseen at training time from
// their interaction history — the cold-start serving path (one WMF ALS
// half-step over frozen item factors).
func FoldInUser(m *Model, history []int32, reg float64) ([]float64, error) {
	return mf.FoldInUser(m, history, reg)
}

// RecommendFoldIn returns top-k items for a folded-in user vector,
// excluding the history itself.
func RecommendFoldIn(m *Model, userFactors []float64, history []int32, k int) []Recommendation {
	seen := make(map[int32]bool, len(history))
	for _, it := range history {
		seen[it] = true
	}
	scores := make([]float64, m.NumItems())
	m.ScoreAllFoldIn(userFactors, scores)
	top := rank.TopK(scores, k, func(i int32) bool { return seen[i] })
	out := make([]Recommendation, len(top))
	for idx, e := range top {
		out[idx] = Recommendation{Item: e.Item, Score: e.Score}
	}
	return out
}

// SimilarItems returns the k nearest items to item i by factor cosine.
func SimilarItems(m *Model, i int32, k int) ([]Recommendation, error) {
	es, err := mf.SimilarItems(m, i, k)
	if err != nil {
		return nil, err
	}
	out := make([]Recommendation, len(es))
	for idx, e := range es {
		out[idx] = Recommendation{Item: e.Item, Score: e.Score}
	}
	return out, nil
}

// MultiConfig parameterizes CLAPF-Multi, the three-pair extension
// instantiating the paper's "not limited to the instantiations in this
// paper" direction; see DefaultMultiConfig.
type MultiConfig = core.MultiConfig

// MultiTrainer learns a CLAPF-Multi model.
type MultiTrainer = core.MultiTrainer

// DefaultMultiConfig returns the default three-pair blend.
func DefaultMultiConfig(trainPairs int) MultiConfig {
	return core.DefaultMultiConfig(trainPairs)
}

// NewMultiTrainer validates cfg and prepares a CLAPF-Multi trainer.
func NewMultiTrainer(cfg MultiConfig, train *Dataset) (*MultiTrainer, error) {
	return core.NewMultiTrainer(cfg, train)
}

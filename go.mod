module clapf

go 1.22

package clapf

import (
	"bytes"
	"strings"
	"testing"
)

// TestEndToEnd exercises the full public API surface: generate → split →
// train → recommend → evaluate → persist → reload.
func TestEndToEnd(t *testing.T) {
	profile := Profile{
		Name: "e2e", Users: 100, Items: 200, Pairs: 4000,
		ZipfExp: 0.6, Dim: 5, Affinity: 6,
	}
	data, err := GenerateDataset(profile, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, test := Split(data, 8)
	if train.NumPairs()+test.NumPairs() != data.NumPairs() {
		t.Fatal("split lost pairs")
	}

	cfg := DefaultConfig(MAP, train.NumPairs())
	cfg.Dim = 8
	cfg.Steps = 60000
	cfg.Seed = 9
	trainer, err := NewTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	trainer.Run()

	res := Evaluate(trainer.Model(), train, test, EvalOptions{Ks: []int{5, 10}})
	if res.AUC < 0.65 {
		t.Errorf("end-to-end AUC = %.3f, want >= 0.65", res.AUC)
	}

	recs := Recommend(trainer.Model(), train, 3, 10)
	if len(recs) != 10 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	for i, r := range recs {
		if train.IsPositive(3, r.Item) {
			t.Errorf("recommendation %d is an already-observed item", r.Item)
		}
		if i > 0 && recs[i-1].Score < r.Score {
			t.Error("recommendations not in descending score order")
		}
	}

	// Persistence round trip must preserve scores exactly.
	var buf bytes.Buffer
	if err := SaveModel(&buf, trainer.Model()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Score(3, recs[0].Item) != trainer.Model().Score(3, recs[0].Item) {
		t.Error("persistence changed scores")
	}
}

func TestDatasetHelpers(t *testing.T) {
	d, err := NewDataset("h", 3, 4, []Interaction{{User: 0, Item: 1}, {User: 1, Item: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDatasetTSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatasetTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPairs() != 2 {
		t.Errorf("TSV round trip lost pairs")
	}

	r, err := DatasetFromRatings("r", 2, 2, []Rating{
		{User: 0, Item: 0, Score: 5},
		{User: 0, Item: 1, Score: 2},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPairs() != 1 || !r.IsPositive(0, 0) {
		t.Error("rating threshold wrong")
	}
}

func TestProfileAccessors(t *testing.T) {
	if len(Profiles()) != 6 {
		t.Errorf("Profiles() returned %d entries", len(Profiles()))
	}
	if ProfileML100K.Users != 943 || ProfileNetflix.Items != 17770 {
		t.Error("profile constants wrong")
	}
	if _, err := ProfileByName("ml20m"); err != nil {
		t.Errorf("ProfileByName: %v", err)
	}
}

func TestSplitFrac(t *testing.T) {
	data, err := GenerateDataset(Profile{
		Name: "sf", Users: 50, Items: 100, Pairs: 1000, Dim: 4, ZipfExp: 0.7, Affinity: 3,
	}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitFrac(data, 3, 0.8)
	if train.NumPairs() <= test.NumPairs() {
		t.Errorf("80/20 split unbalanced: %d vs %d", train.NumPairs(), test.NumPairs())
	}
}

func TestVariantsExposed(t *testing.T) {
	if MAP.String() != "MAP" || MRR.String() != "MRR" {
		t.Error("variant constants wrong")
	}
	if SamplerDSS.String() != "DSS" || SamplerUniform.String() != "Uniform" {
		t.Error("sampler constants wrong")
	}
}

func TestFacadeFoldInAndSimilar(t *testing.T) {
	data, err := GenerateDataset(Profile{
		Name: "fs", Users: 60, Items: 100, Pairs: 2000, Dim: 4, ZipfExp: 0.6, Affinity: 6,
	}, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(MAP, data.NumPairs())
	cfg.Dim = 8
	cfg.Steps = 20000
	tr, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()

	history := []int32{3, 7, 11}
	uf, err := FoldInUser(tr.Model(), history, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	recs := RecommendFoldIn(tr.Model(), uf, history, 5)
	if len(recs) != 5 {
		t.Fatalf("got %d fold-in recommendations", len(recs))
	}
	for _, r := range recs {
		for _, h := range history {
			if r.Item == h {
				t.Error("history item recommended back")
			}
		}
	}

	sims, err := SimilarItems(tr.Model(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != 4 || sims[0].Item == 3 {
		t.Errorf("similar items wrong: %+v", sims)
	}
}

func TestFacadeLoadRatings(t *testing.T) {
	in := "1\t10\t5\t0\n1\t11\t2\t0\n2\t10\t4\t0\n"
	d, mapping, err := LoadRatings(strings.NewReader(in), FormatML100K, "real", 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPairs() != 2 || len(mapping.Users) != 2 {
		t.Errorf("parsed %d pairs, %d users", d.NumPairs(), len(mapping.Users))
	}
}

func TestFacadeMultiTrainer(t *testing.T) {
	data, err := GenerateDataset(Profile{
		Name: "fm", Users: 50, Items: 90, Pairs: 1500, Dim: 4, ZipfExp: 0.6, Affinity: 6,
	}, 1, 41)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMultiConfig(data.NumPairs())
	cfg.Dim = 6
	cfg.Steps = 5000
	tr, err := NewMultiTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	if tr.StepsDone() != 5000 {
		t.Errorf("StepsDone = %d", tr.StepsDone())
	}
}

// Command clapf-datagen synthesizes implicit-feedback datasets with the
// statistical shape of the paper's six corpora and writes them as TSV,
// optionally pre-split into train and test halves.
//
// Usage:
//
//	clapf-datagen -profile ML100K -scale 0.25 -out data.tsv
//	clapf-datagen -profile Netflix -scale 0.02 -split -out netflix
//	  (writes netflix.train.tsv and netflix.test.tsv)
package main

import (
	"flag"
	"fmt"
	"os"

	"clapf"
)

func main() {
	var (
		profile = flag.String("profile", "ML100K", "Table 1 profile name")
		scale   = flag.Float64("scale", 0.25, "scale factor (1 = full size)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		split   = flag.Bool("split", false, "write 50/50 train/test files instead of one file")
		out     = flag.String("out", "", "output path (file, or prefix with -split); required")
	)
	flag.Parse()

	if err := run(*profile, *scale, *seed, *split, *out); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-datagen:", err)
		os.Exit(1)
	}
}

func run(profileName string, scale float64, seed uint64, split bool, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	p, err := clapf.ProfileByName(profileName)
	if err != nil {
		return err
	}
	data, err := clapf.GenerateDataset(p, scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("generated %s: %d users, %d items, %d pairs (density %.3f%%)\n",
		data.Name(), data.NumUsers(), data.NumItems(), data.NumPairs(), 100*data.Density())

	if !split {
		return writeTSV(out, data)
	}
	train, test := clapf.Split(data, seed+1)
	if err := writeTSV(out+".train.tsv", train); err != nil {
		return err
	}
	if err := writeTSV(out+".test.tsv", test); err != nil {
		return err
	}
	fmt.Printf("split: %d train pairs -> %s.train.tsv, %d test pairs -> %s.test.tsv\n",
		train.NumPairs(), out, test.NumPairs(), out)
	return nil
}

func writeTSV(path string, d *clapf.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := clapf.WriteDatasetTSV(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"clapf"
)

func TestRunSingleFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.tsv")
	if err := run("ML100K", 0.05, 1, false, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := clapf.ReadDatasetTSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPairs() == 0 || d.Name() != "ML100K" {
		t.Errorf("generated dataset wrong: %d pairs, name %q", d.NumPairs(), d.Name())
	}
}

func TestRunSplit(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "s")
	if err := run("usertag", 0.03, 2, true, prefix); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".train.tsv", ".test.tsv"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("missing %s: %v", suffix, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("ML100K", 0.05, 1, false, ""); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run("bogus", 0.05, 1, false, "x"); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run("ML100K", 0.05, 1, false, "/nonexistent-dir/x.tsv"); err == nil {
		t.Error("unwritable path accepted")
	}
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"clapf"
)

func fixtureFiles(t *testing.T) (modelPath, trainPath string) {
	t.Helper()
	dir := t.TempDir()
	trainPath = filepath.Join(dir, "train.tsv")
	modelPath = filepath.Join(dir, "m.clapf")

	data, err := clapf.GenerateDataset(clapf.Profile{
		Name: "srvcli", Users: 30, Items: 50, Pairs: 600, Dim: 4, ZipfExp: 0.6, Affinity: 5,
	}, 1, 91)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(trainPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := clapf.WriteDatasetTSV(f, data); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := clapf.DefaultConfig(clapf.MAP, data.NumPairs())
	cfg.Dim = 6
	cfg.Steps = 3000
	tr, err := clapf.NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	if err := clapf.SaveModelFile(modelPath, tr.Model()); err != nil {
		t.Fatal(err)
	}
	return
}

func TestBuildServerAndServe(t *testing.T) {
	modelPath, trainPath := fixtureFiles(t)
	s, _, _, err := buildServer(modelPath, trainPath, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/recommend?user=1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Items []struct {
			Item  int32   `json:"item"`
			Score float64 `json:"score"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Items) != 3 {
		t.Errorf("got %d items", len(body.Items))
	}
}

func TestHandlerMetricsAndPprof(t *testing.T) {
	modelPath, trainPath := fixtureFiles(t)
	s, _, _, err := buildServer(modelPath, trainPath, false)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		pprofOn    bool
		path       string
		wantStatus int
	}{
		{"metrics without pprof", false, "/metrics", 200},
		{"pprof index disabled", false, "/debug/pprof/", 404},
		{"metrics with pprof", true, "/metrics", 200},
		{"pprof index enabled", true, "/debug/pprof/", 200},
		{"pprof cmdline enabled", true, "/debug/pprof/cmdline", 200},
		{"recommend with pprof", true, "/recommend?user=1&k=3", 200},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts := httptest.NewServer(newHandler(s, c.pprofOn))
			defer ts.Close()
			resp, err := ts.Client().Get(ts.URL + c.path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("GET %s = %d, want %d", c.path, resp.StatusCode, c.wantStatus)
			}
			if c.path == "/metrics" {
				buf, _ := io.ReadAll(resp.Body)
				if !strings.Contains(string(buf), "clapf_http_requests_total") {
					t.Errorf("/metrics exposition missing request counter:\n%s", buf)
				}
			}
		})
	}
}

func TestBuildServerErrors(t *testing.T) {
	modelPath, trainPath := fixtureFiles(t)
	if _, _, _, err := buildServer("", trainPath, false); err == nil {
		t.Error("missing model path accepted")
	}
	if _, _, _, err := buildServer(modelPath, "", false); err == nil {
		t.Error("missing train path accepted")
	}
	if _, _, _, err := buildServer(filepath.Join(t.TempDir(), "gone"), trainPath, false); err == nil {
		t.Error("missing model file accepted")
	}
	if _, _, _, err := buildServer(modelPath, filepath.Join(t.TempDir(), "gone"), false); err == nil {
		t.Error("missing train file accepted")
	}
}

// healthGeneration fetches /healthz and returns the reported model
// generation, failing the test on any transport or decode error.
func healthGeneration(t *testing.T, base string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		ModelGeneration uint64 `json:"model_generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.ModelGeneration
}

// waitGeneration polls /healthz until the model generation reaches want,
// since signal handling in run() is asynchronous to the test goroutine.
func waitGeneration(t *testing.T, base string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if healthGeneration(t, base) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("model generation never reached %d", want)
}

func TestRunReloadAndShutdown(t *testing.T) {
	modelPath, trainPath := fixtureFiles(t)
	o := options{
		modelPath: modelPath, trainPath: trainPath,
		addr:           "127.0.0.1:0",
		maxInFlight:    16,
		requestTimeout: 5 * time.Second,
		readTimeout:    5 * time.Second,
		writeTimeout:   5 * time.Second,
		idleTimeout:    time.Minute,
		sigCh:          make(chan os.Signal, 1),
	}
	bound := make(chan string, 1)
	o.boundAddr = bound

	done := make(chan error, 1)
	go func() { done <- run(o) }()
	var base string
	select {
	case addr := <-bound:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("run exited before binding: %v", err)
	}

	if g := healthGeneration(t, base); g != 0 {
		t.Fatalf("fresh server generation = %d", g)
	}

	// SIGHUP with a rewritten valid model file: generation advances.
	model, err := clapf.LoadModelFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := clapf.SaveModelFile(modelPath, model); err != nil {
		t.Fatal(err)
	}
	o.sigCh <- syscall.SIGHUP
	waitGeneration(t, base, 1)

	// SIGHUP with a corrupt file: reload is rejected, the old model and
	// generation stay, and the server keeps answering.
	if err := os.WriteFile(modelPath, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	o.sigCh <- syscall.SIGHUP
	time.Sleep(100 * time.Millisecond)
	if g := healthGeneration(t, base); g != 1 {
		t.Fatalf("corrupt reload changed generation to %d", g)
	}
	resp, err := http.Get(base + "/recommend?user=1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-corrupt-reload recommend = %d", resp.StatusCode)
	}

	// Interrupt: the server drains and run returns cleanly.
	o.sigCh <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after interrupt")
	}
}

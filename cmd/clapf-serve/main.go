// Command clapf-serve exposes a trained model over HTTP.
//
// Usage:
//
//	clapf-serve -model model.clapf -train train.tsv [-addr :8080] [-pprof]
//	            [-retrieval exact|ivf] [-nlist N] [-nprobe P] [-store-mmap]
//
// Endpoints (JSON): GET /healthz (liveness, model dims, uptime, request
// totals), GET /readyz (readiness — 503 while draining), GET
// /recommend?user=U&k=K, GET /recommend?items=1,2,3&k=K (cold-start
// fold-in), POST /recommend/batch (up to -max-batch requests per call),
// and GET /similar?item=I&k=K. GET /metrics serves Prometheus text
// exposition (per-endpoint request counts, status codes, latency
// histograms, per-stage latency attribution, cache hit/eviction
// counters, model and runtime gauges). Every request runs under a W3C
// trace (inbound traceparent honoured); GET /debug/traces serves the
// flight recorder of retained traces — a -trace-sample fraction of all
// requests plus every request slower than -trace-slow or errored.
// -pprof additionally mounts net/http/pprof under /debug/pprof/ for
// live profiling. -admin-reload mounts POST /admin/reload so a router
// (cmd/clapf-router) can drive rolling reloads over HTTP; keep it off on
// untrusted networks.
//
// Known-user top-K responses are cached (-cache-size entries, LRU); the
// cache is invalidated atomically whenever the model is swapped, so a
// reload can never serve stale rankings.
//
// -feedback-log DIR enables streaming ingest: POST /feedback appends
// each {user,item} event to a crash-safe segmented WAL and acknowledges
// only after the covering fsync (-feedback-sync batches group commits),
// then applies a bounded online fold-in update to the user's serving
// factors and invalidates just that user's cached answers. On restart
// the WAL is replayed — torn tails are truncated, acknowledged events
// are never lost — and -promote-every folds the accumulated log into
// -model on a cadence, hot-promoting the re-export with generation
// fencing; a failed promotion leaves the old generation serving.
//
// -retrieval ivf answers top-K queries from a cluster-pruned IVF index
// over the item factors instead of scoring the whole catalog — sublinear
// per-query cost at a small, tunable recall loss (-nlist/-nprobe; the
// defaults land around recall@10 0.95+ at several times exact
// throughput). The index is built at startup and rebuilt atomically on
// every model reload; a model whose index cannot be built is rejected
// like any other bad reload.
//
// The process is hardened for unattended operation: handler panics are
// recovered into 500s, load beyond -max-inflight is shed with 503 +
// Retry-After, every request carries a -request-timeout deadline, and the
// listener enforces read/write/idle timeouts so a slow client cannot pin
// a connection forever. SIGHUP hot-reloads the model from -model without
// dropping a request — a corrupt or mismatched file is rejected and the
// old model keeps serving. SIGINT/SIGTERM flips /readyz to 503 and drains
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clapf"
	"clapf/internal/dataset"
	"clapf/internal/feedback"
	"clapf/internal/obs"
	"clapf/internal/retrieval"
	"clapf/internal/serve"
	"clapf/internal/store"
)

// options carries the parsed flags; tests construct it directly and
// inject sigCh/boundAddr instead of sending real signals.
type options struct {
	modelPath, trainPath string
	addr                 string
	pprofOn              bool
	maxInFlight          int
	maxBatch             int
	cacheSize            int
	requestTimeout       time.Duration
	readTimeout          time.Duration
	writeTimeout         time.Duration
	idleTimeout          time.Duration
	traceSample          float64
	traceSlow            time.Duration
	adminReload          bool
	retrievalMode        string
	nlist, nprobe        int
	storeMmap            bool
	feedbackLog          string
	feedbackSync         int
	feedbackFlush        time.Duration
	promoteEvery         time.Duration
	promotePrune         bool

	// sigCh, when non-nil, replaces signal.Notify delivery.
	sigCh chan os.Signal
	// boundAddr, when non-nil, receives the listener's address once bound.
	boundAddr chan<- string
}

func main() {
	var o options
	flag.StringVar(&o.modelPath, "model", "", "trained model file (required; re-read on SIGHUP)")
	flag.StringVar(&o.trainPath, "train", "", "training dataset TSV, for exclusions (required)")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.BoolVar(&o.pprofOn, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.IntVar(&o.maxInFlight, "max-inflight", 256, "in-flight request cap before shedding with 503 (0 disables)")
	flag.IntVar(&o.maxBatch, "max-batch", serve.DefaultMaxBatch, "entry cap per /recommend/batch request")
	flag.IntVar(&o.cacheSize, "cache-size", serve.DefaultCacheSize, "top-K result cache entries (0 disables caching)")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 10*time.Second, "per-request context deadline (0 disables)")
	flag.DurationVar(&o.readTimeout, "read-timeout", 10*time.Second, "http.Server ReadTimeout")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 30*time.Second, "http.Server WriteTimeout")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	flag.Float64Var(&o.traceSample, "trace-sample", 0.01, "head-sampling probability for keeping a request trace in /debug/traces (slow and errored requests are always kept)")
	flag.DurationVar(&o.traceSlow, "trace-slow", 250*time.Millisecond, "duration beyond which a request trace is always kept and logged")
	flag.BoolVar(&o.adminReload, "admin-reload", false, "mount POST /admin/reload (hot model reload over HTTP, for router-driven rolling reloads; keep off on untrusted networks)")
	flag.StringVar(&o.retrievalMode, "retrieval", "exact", "top-K retrieval strategy: exact (dense scoring) or ivf (cluster-pruned approximate index, rebuilt on every model reload)")
	flag.IntVar(&o.nlist, "nlist", 0, "IVF cells for -retrieval ivf (0 = 2*sqrt(items))")
	flag.IntVar(&o.nprobe, "nprobe", 0, "IVF cells probed per query for -retrieval ivf (0 = nlist/4)")
	flag.BoolVar(&o.storeMmap, "store-mmap", false, "mmap a float32 v3 model file instead of parsing it onto the heap (requires a -model exported with clapf-train -export-f32; SIGHUP reloads stay mapped)")
	flag.StringVar(&o.feedbackLog, "feedback-log", "", "directory for the streaming-feedback WAL; enables POST /feedback with durable acks and online fold-in updates (incompatible with -store-mmap: promotion re-exports float64 factors)")
	flag.IntVar(&o.feedbackSync, "feedback-sync", 1, "fsync the feedback WAL every N appends (1 = every event before its ack; higher batches group commits)")
	flag.DurationVar(&o.feedbackFlush, "feedback-flush-interval", 5*time.Millisecond, "max time an unsynced feedback append waits for its group-commit fsync (only with -feedback-sync > 1)")
	flag.DurationVar(&o.promoteEvery, "promote-every", 0, "interval for folding the feedback log into -model and hot-promoting it (0 disables the promotion loop)")
	flag.BoolVar(&o.promotePrune, "promote-prune", false, "drop feedback WAL segments already folded into the promoted model (trades disk for forgetting pre-promotion exclusion history on restart)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-serve:", err)
		os.Exit(1)
	}
}

// buildServer loads the model and dataset and wires the HTTP server.
// With storeMmap the model file is paged in via mmap (v3 float32 format
// only) after a one-off full-section checksum, and the server is flagged
// so hot reloads stay on the mapped path. The returned meta is the model
// file's metadata trailer (nil on the mmap path or for files without
// one) — its FeedbackSeq watermark seeds the feedback ingest pipeline;
// the dataset is returned so the same parse feeds the ingestor.
func buildServer(modelPath, trainPath string, storeMmap bool) (*serve.Server, *store.Meta, *dataset.Dataset, error) {
	if modelPath == "" || trainPath == "" {
		return nil, nil, nil, fmt.Errorf("-model and -train are required")
	}
	f, err := os.Open(trainPath)
	if err != nil {
		return nil, nil, nil, err
	}
	train, err := clapf.ReadDatasetTSV(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	if storeMmap {
		mm, err := store.LoadMapped(modelPath)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := mm.Verify(); err != nil {
			mm.Close()
			return nil, nil, nil, err
		}
		server, err := serve.NewFromParams(mm.Factors(), train)
		if err != nil {
			mm.Close()
			return nil, nil, nil, err
		}
		server.SetStoreMapped(true)
		return server, nil, train, nil
	}
	model, meta, err := store.LoadFileWithMeta(modelPath)
	if err != nil {
		return nil, nil, nil, err
	}
	server, err := serve.New(model, train)
	if err != nil {
		return nil, nil, nil, err
	}
	return server, meta, train, nil
}

// newHandler assembles the final handler: the instrumented serve mux,
// optionally with the pprof endpoints mounted beside it. pprof is opt-in
// because it exposes heap and CPU internals — not something to leave on
// an internet-facing port by default.
func newHandler(server *serve.Server, pprofOn bool) http.Handler {
	h := server.Handler()
	if !pprofOn {
		return h
	}
	top := http.NewServeMux()
	top.Handle("/", h)
	top.HandleFunc("/debug/pprof/", pprof.Index)
	top.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	top.HandleFunc("/debug/pprof/profile", pprof.Profile)
	top.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	top.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return top
}

func run(o options) error {
	logger := obs.NewTextLogger(os.Stderr, slog.LevelInfo)

	if o.feedbackLog != "" && o.storeMmap {
		return fmt.Errorf("-feedback-log needs float64 factors for online fold-in re-export; drop -store-mmap")
	}
	server, meta, train, err := buildServer(o.modelPath, o.trainPath, o.storeMmap)
	if err != nil {
		return err
	}
	server.SetLogger(logger)
	server.MaxInFlight = o.maxInFlight
	server.RequestTimeout = o.requestTimeout
	if o.maxBatch > 0 {
		server.MaxBatch = o.maxBatch
	}
	server.SetCacheSize(o.cacheSize)
	if o.retrievalMode == "" {
		o.retrievalMode = "exact"
	}
	mode, err := retrieval.ParseMode(o.retrievalMode)
	if err != nil {
		return err
	}
	if err := server.SetRetrieval(mode, retrieval.Config{NLists: o.nlist, NProbe: o.nprobe}); err != nil {
		return err
	}
	if o.adminReload {
		server.EnableAdminReload(func() error { return server.ReloadFromFile(o.modelPath) })
	}
	server.Tracer().SetSampleRate(o.traceSample)
	server.Tracer().SetSlowThreshold(o.traceSlow)
	stopSampler := server.StartRuntimeSampler(10 * time.Second)
	defer stopSampler()

	if o.feedbackLog != "" {
		// Order matters: recover the WAL, seed the ingestor's watermark
		// from the model file's FeedbackSeq, replay the retained log into
		// the exclusion/fold-in state, and only then attach the pipeline
		// to the server — EnableFeedback rebuilds the serving overlay from
		// everything the replay recovered beyond the watermark.
		fsync := server.Registry().NewHistogram("clapf_feedback_fsync_seconds",
			"Feedback WAL fsync latency (group commits).",
			obs.ExponentialBuckets(1e-5, 4, 10))
		wal, rec, err := feedback.OpenWAL(o.feedbackLog, feedback.WALConfig{
			SyncEvery:    o.feedbackSync,
			SyncInterval: o.feedbackFlush,
			FsyncSeconds: fsync,
			Logger:       logger,
		})
		if err != nil {
			return err
		}
		defer wal.Close()
		ing := feedback.NewIngestor(wal, train, feedback.Config{FoldInReg: server.FoldInReg}, server.Registry())
		var folded uint64
		if meta != nil {
			folded = meta.FeedbackSeq
		}
		if installed := ing.SetFolded(folded); installed != folded {
			logger.Warn("feedback: model watermark exceeds the log; clamped",
				"model_folded_seq", folded, "wal_last_seq", installed,
				"hint", "the model was promoted against a different feedback log")
			folded = installed
		}
		replayed, err := ing.Replay()
		if err != nil {
			return err
		}
		ing.Bind(server)
		if err := server.EnableFeedback(ing); err != nil {
			return err
		}
		logger.Info("feedback ingest enabled", "dir", o.feedbackLog,
			"replayed", replayed, "watermark", folded, "last_seq", wal.LastSeq(),
			"recovered_truncated_bytes", rec.TruncatedBytes, "sync_every", o.feedbackSync)
		if o.promoteEvery > 0 {
			prom, err := feedback.NewPromoter(ing, server, feedback.PromoteConfig{
				Interval:  o.promoteEvery,
				ModelPath: o.modelPath,
				Prune:     o.promotePrune,
				Logger:    logger,
			})
			if err != nil {
				return err
			}
			promCtx, promCancel := context.WithCancel(context.Background())
			defer promCancel()
			go prom.Run(promCtx)
		}
	}
	params := server.Params()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.boundAddr != nil {
		o.boundAddr <- ln.Addr().String()
	}

	httpServer := &http.Server{
		Handler:           newHandler(server, o.pprofOn),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", ln.Addr().String(),
			"users", params.NumUsers(), "items", params.NumItems(), "dim", params.Dim(),
			"retrieval", server.Retrieval().String(), "mmap", o.storeMmap, "pprof", o.pprofOn)
		errCh <- httpServer.Serve(ln)
	}()

	stop := o.sigCh
	if stop == nil {
		stop = make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
		defer signal.Stop(stop)
	}
	for {
		select {
		case err := <-errCh:
			// ErrServerClosed means someone shut the server down cleanly —
			// not a failure even when it arrives without our signal.
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case sig := <-stop:
			if sig == syscall.SIGHUP {
				// Hot reload; failure keeps the old model serving, so it is
				// logged (by ReloadFromFile) but never fatal.
				_ = server.ReloadFromFile(o.modelPath)
				continue
			}
			logger.Info("draining", "signal", sig.String())
			server.SetReady(false) // /readyz → 503: stop new routing first
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			shutdownErr := httpServer.Shutdown(ctx)
			// Shutdown makes Serve return ErrServerClosed; drain it so the
			// goroutine's send never leaks, and surface any real listener
			// error that raced with the signal.
			if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				return serveErr
			}
			if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
				return shutdownErr
			}
			logger.Info("stopped")
			return nil
		}
	}
}

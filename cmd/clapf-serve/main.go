// Command clapf-serve exposes a trained model over HTTP.
//
// Usage:
//
//	clapf-serve -model model.clapf -train train.tsv [-addr :8080] [-pprof]
//
// Endpoints (JSON): GET /healthz (liveness, model dims, uptime, request
// totals), GET /recommend?user=U&k=K, GET /recommend?items=1,2,3&k=K
// (cold-start fold-in), and GET /similar?item=I&k=K. GET /metrics serves
// Prometheus text exposition (per-endpoint request counts, status codes,
// latency histograms, model gauges). -pprof additionally mounts
// net/http/pprof under /debug/pprof/ for live profiling. The server
// drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clapf"
	"clapf/internal/obs"
	"clapf/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model file (required)")
		trainPath = flag.String("train", "", "training dataset TSV, for exclusions (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	if err := run(*modelPath, *trainPath, *addr, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-serve:", err)
		os.Exit(1)
	}
}

// buildServer loads the model and dataset and wires the HTTP server.
func buildServer(modelPath, trainPath string) (*serve.Server, error) {
	if modelPath == "" || trainPath == "" {
		return nil, fmt.Errorf("-model and -train are required")
	}
	model, err := clapf.LoadModelFile(modelPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(trainPath)
	if err != nil {
		return nil, err
	}
	train, err := clapf.ReadDatasetTSV(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	return serve.New(model, train)
}

// newHandler assembles the final handler: the instrumented serve mux,
// optionally with the pprof endpoints mounted beside it. pprof is opt-in
// because it exposes heap and CPU internals — not something to leave on
// an internet-facing port by default.
func newHandler(server *serve.Server, pprofOn bool) http.Handler {
	h := server.Handler()
	if !pprofOn {
		return h
	}
	top := http.NewServeMux()
	top.Handle("/", h)
	top.HandleFunc("/debug/pprof/", pprof.Index)
	top.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	top.HandleFunc("/debug/pprof/profile", pprof.Profile)
	top.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	top.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return top
}

func run(modelPath, trainPath, addr string, pprofOn bool) error {
	logger := obs.NewTextLogger(os.Stderr, slog.LevelInfo)

	server, err := buildServer(modelPath, trainPath)
	if err != nil {
		return err
	}
	server.SetLogger(logger)
	model := server.Model()

	httpServer := &http.Server{
		Addr:              addr,
		Handler:           newHandler(server, pprofOn),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", addr,
			"users", model.NumUsers(), "items", model.NumItems(), "dim", model.Dim(),
			"pprof", pprofOn)
		errCh <- httpServer.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// ErrServerClosed means someone shut the server down cleanly —
		// not a failure even when it arrives without our signal.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr := httpServer.Shutdown(ctx)
		// Shutdown makes ListenAndServe return ErrServerClosed; drain it
		// so the goroutine's send never leaks, and surface any real
		// listener error that raced with the signal.
		if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			return serveErr
		}
		if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
			return shutdownErr
		}
		logger.Info("stopped")
		return nil
	}
}

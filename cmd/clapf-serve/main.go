// Command clapf-serve exposes a trained model over HTTP.
//
// Usage:
//
//	clapf-serve -model model.clapf -train train.tsv [-addr :8080]
//
// Endpoints (JSON): GET /healthz, GET /recommend?user=U&k=K,
// GET /recommend?items=1,2,3&k=K (cold-start fold-in), and
// GET /similar?item=I&k=K. The server drains in-flight requests on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clapf"
	"clapf/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model file (required)")
		trainPath = flag.String("train", "", "training dataset TSV, for exclusions (required)")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	if err := run(*modelPath, *trainPath, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-serve:", err)
		os.Exit(1)
	}
}

// buildServer loads the model and dataset and wires the HTTP server.
func buildServer(modelPath, trainPath string) (*serve.Server, error) {
	if modelPath == "" || trainPath == "" {
		return nil, fmt.Errorf("-model and -train are required")
	}
	model, err := clapf.LoadModelFile(modelPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(trainPath)
	if err != nil {
		return nil, err
	}
	train, err := clapf.ReadDatasetTSV(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	return serve.New(model, train)
}

func run(modelPath, trainPath, addr string) error {
	server, err := buildServer(modelPath, trainPath)
	if err != nil {
		return err
	}
	model := server.Model()

	httpServer := &http.Server{
		Addr:              addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("serving %d users × %d items on %s\n", model.NumUsers(), model.NumItems(), addr)
		errCh <- httpServer.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Printf("received %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"clapf"
	"clapf/internal/cluster"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/serve"
)

func TestParseShards(t *testing.T) {
	got, err := parseShards(" http://a:1 ,, http://b:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "shard-0" || got[1].Name != "shard-1" {
		t.Errorf("positional names wrong: %+v", got)
	}
	if got[0].URL != "http://a:1" || got[1].URL != "http://b:2" {
		t.Errorf("URLs not trimmed: %+v", got)
	}

	got, err = parseShards("east=http://a:1,west=https://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Name != "east" || got[1].Name != "west" || got[1].URL != "https://b:2" {
		t.Errorf("named shards wrong: %+v", got)
	}

	for _, bad := range []string{"", " , ", "ftp://a:1", "just-a-host:8080"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestBuildRouterErrors(t *testing.T) {
	if _, err := buildRouter(options{shardSpec: ""}); err == nil {
		t.Error("empty -shards accepted")
	}
	if _, err := buildRouter(options{shardSpec: "http://a:1", trainPath: "/nonexistent/train.tsv"}); err == nil {
		t.Error("missing -train file accepted")
	}
}

// fixture generates a tiny world, a valid model over it, and the
// training TSV on disk for the router's -train fallback path.
func fixture(t *testing.T) (*mf.Model, *dataset.Dataset, string) {
	t.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "routercli", Users: 40, Items: 60, Pairs: 900,
		ZipfExp: 0.6, Dim: 4, Affinity: 5,
	}, mathx.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	m := mf.MustNew(mf.Config{
		NumUsers: w.Data.NumUsers(), NumItems: w.Data.NumItems(), Dim: 4, UseBias: true,
	})
	m.InitGaussian(mathx.NewRNG(18), 0.1)

	trainPath := filepath.Join(t.TempDir(), "train.tsv")
	f, err := os.Create(trainPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := clapf.WriteDatasetTSV(f, w.Data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return m, w.Data, trainPath
}

// startShards spins n in-process serve shards with admin reload enabled
// and returns their base URLs plus the servers (to watch generations).
func startShards(t *testing.T, m *mf.Model, train *dataset.Dataset, n int) ([]string, []*serve.Server) {
	t.Helper()
	urls := make([]string, n)
	srvs := make([]*serve.Server, n)
	for i := range urls {
		s, err := serve.New(m.Clone(), train)
		if err != nil {
			t.Fatal(err)
		}
		s.EnableAdminReload(func() error { return s.SwapModel(s.Model().Clone()) })
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		srvs[i] = s
	}
	return urls, srvs
}

// routerOptions builds a fast-knobbed options struct for run() tests.
func routerOptions(shardURLs []string, trainPath string, bound chan string) options {
	return options{
		shardSpec:      strings.Join(shardURLs, ","),
		addr:           "127.0.0.1:0",
		trainPath:      trainPath,
		vnodes:         64,
		maxRetries:     3,
		attemptTimeout: 2 * time.Second,
		staleCache:     128,
		breakFailures:  3,
		breakCooldown:  100 * time.Millisecond,
		probeInterval:  10 * time.Millisecond,
		probeTimeout:   500 * time.Millisecond,
		seed:           42,
		sigCh:          make(chan os.Signal, 1),
		boundAddr:      bound,
	}
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// End to end through the real binary plumbing: bind, route, reload on
// SIGHUP, drain on interrupt.
func TestRunRoutesReloadsAndShutsDown(t *testing.T) {
	m, train, trainPath := fixture(t)
	urls, srvs := startShards(t, m, train, 3)

	bound := make(chan string, 1)
	o := routerOptions(urls, trainPath, bound)

	done := make(chan error, 1)
	go func() { done <- run(o) }()
	base := "http://" + <-bound

	// Routed traffic: fresh answers, shard named, never degraded. A user
	// whose history already covers the catalog legitimately gets fewer
	// than k items back.
	for u := 0; u < 8; u++ {
		unseen := 0
		for it := int32(0); it < int32(train.NumItems()); it++ {
			if !train.IsPositive(int32(u), it) {
				unseen++
			}
		}
		want := min(5, unseen)
		var body cluster.Response
		if code := getJSON(t, fmt.Sprintf("%s/recommend?user=%d&k=5", base, u), &body); code != http.StatusOK {
			t.Fatalf("user %d: status %d", u, code)
		}
		if body.Degraded != "" {
			t.Errorf("user %d: healthy cluster answered degraded=%q", u, body.Degraded)
		}
		if body.Shard == "" || len(body.Items) != want {
			t.Errorf("user %d: shard=%q items=%d, want %d", u, body.Shard, len(body.Items), want)
		}
	}
	if code := getJSON(t, base+"/readyz", nil); code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", code)
	}

	// SIGHUP sweeps the fleet: every shard's generation must advance.
	o.sigCh <- syscall.SIGHUP
	deadline := time.Now().Add(10 * time.Second)
	for {
		reloaded := 0
		for _, s := range srvs {
			if s.Generation() > 0 {
				reloaded++
			}
		}
		if reloaded == len(srvs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rolling reload incomplete: %d/%d shards reloaded", reloaded, len(srvs))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Traffic still flows after the sweep.
	var body cluster.Response
	if code := getJSON(t, base+"/recommend?user=1&k=5", &body); code != http.StatusOK || body.Degraded != "" {
		t.Errorf("post-reload: status %d degraded %q", code, body.Degraded)
	}

	o.sigCh <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after interrupt")
	}
}

// With no -train the router still starts; when every shard is gone it
// answers from the stale cache or says an honest 503 — never hangs.
func TestRunWithoutTrainFallsBackHonestly(t *testing.T) {
	m, train, _ := fixture(t)
	urls, _ := startShards(t, m, train, 2)

	bound := make(chan string, 1)
	o := routerOptions(urls, "", bound)

	done := make(chan error, 1)
	go func() { done <- run(o) }()
	base := "http://" + <-bound

	var body cluster.Response
	if code := getJSON(t, base+"/recommend?user=3&k=5", &body); code != http.StatusOK {
		t.Fatalf("healthy request: status %d", code)
	}
	if body.Degraded != "" {
		t.Errorf("healthy request degraded=%q", body.Degraded)
	}

	o.sigCh <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after interrupt")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(options{shardSpec: ""}); err == nil {
		t.Error("run accepted empty shard list")
	}
}

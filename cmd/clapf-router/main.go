// Command clapf-router fronts a fleet of clapf-serve shards with a
// consistent-hash router that keeps answering while shards fail.
//
// Usage:
//
//	clapf-router -shards http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	    [-addr :8070] [-train train.tsv]
//
// Requests route by user id (cold-start requests by their history set)
// over a consistent-hash ring, so one user's traffic keeps hitting one
// shard's result cache. Failures are handled in layers: bounded retries
// with full-jitter backoff walk the ring's replica order, a hedged
// duplicate fires when a shard stalls past the observed p95, per-shard
// circuit breakers stop traffic to dead shards, and a background
// /readyz prober ejects and readmits shards with hysteresis. When every
// shard is gone the router degrades explicitly — router-local stale
// top-K, then (with -train) a popularity ranking, then an honest 503 —
// and every degraded response says so in its "degraded" field.
//
// Endpoints: GET /recommend and GET /similar (proxied with failover),
// POST /feedback (forwarded to the user's owning shard only — feedback
// writes are never hedged or failed over, since the owner's WAL is the
// durability domain; when the owner is down the event is buffered and
// acknowledged with a labeled 202, drained by a background flusher, with
// an honest 503 once the bounded buffer fills),
// GET /healthz (per-shard breaker and membership state, plus each
// shard's reported retrieval mode; -retrieval exact|ivf makes the prober
// flag shards that drift from the expected mode), GET /readyz,
// GET /metrics (clapf_router_* Prometheus exposition), GET /debug/traces
// (flight recorder; shard spans join the router's W3C trace via
// traceparent propagation).
//
// SIGHUP triggers a rolling reload: each shard's POST /admin/reload
// (start clapf-serve with -admin-reload) is driven in turn, gated on
// quorum and on the previous shard returning ready — one signal, zero
// dropped requests, bounded generation skew. SIGINT/SIGTERM drains and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clapf"
	"clapf/internal/cluster"
	"clapf/internal/dataset"
	"clapf/internal/obs"
)

// options carries the parsed flags; tests construct it directly and
// inject sigCh/boundAddr instead of sending real signals.
type options struct {
	shardSpec string
	addr      string
	trainPath string
	retrieval string

	vnodes         int
	maxRetries     int
	attemptTimeout time.Duration
	noHedge        bool
	staleCache     int
	quorum         int
	breakFailures  int
	breakCooldown  time.Duration
	probeInterval  time.Duration
	probeTimeout   time.Duration
	seed           uint64
	feedbackBuffer int
	feedbackFlush  time.Duration

	// sigCh, when non-nil, replaces signal.Notify delivery.
	sigCh chan os.Signal
	// boundAddr, when non-nil, receives the listener's address once bound.
	boundAddr chan<- string
}

func main() {
	var o options
	flag.StringVar(&o.shardSpec, "shards", "", "comma-separated shard base URLs (required)")
	flag.StringVar(&o.addr, "addr", ":8070", "listen address")
	flag.StringVar(&o.trainPath, "train", "", "training dataset TSV; enables the popularity-ranking fallback")
	flag.StringVar(&o.retrieval, "retrieval", "", "retrieval mode every shard is expected to serve (exact or ivf); drift from a shard's reported mode is logged and shown in /healthz (empty disables the check)")
	flag.IntVar(&o.vnodes, "vnodes", 64, "virtual ring points per shard")
	flag.IntVar(&o.maxRetries, "max-retries", 3, "retry attempts beyond the first per request")
	flag.DurationVar(&o.attemptTimeout, "attempt-timeout", 2*time.Second, "per-shard attempt deadline")
	flag.BoolVar(&o.noHedge, "no-hedge", false, "disable hedged requests")
	flag.IntVar(&o.staleCache, "stale-cache", 4096, "router-local stale top-K fallback cache entries (<0 disables)")
	flag.IntVar(&o.quorum, "quorum", 0, "min other available shards before a rolling reload touches one (0 = majority)")
	flag.IntVar(&o.breakFailures, "breaker-failures", 5, "consecutive failures that open a shard's circuit breaker")
	flag.DurationVar(&o.breakCooldown, "breaker-cooldown", 2*time.Second, "how long an open breaker waits before half-open probes")
	flag.DurationVar(&o.probeInterval, "probe-interval", time.Second, "health probe sweep interval")
	flag.DurationVar(&o.probeTimeout, "probe-timeout", 500*time.Millisecond, "per-shard health probe timeout")
	flag.Uint64Var(&o.seed, "seed", 0, "jitter seed (0 = from the clock, so routers desynchronize)")
	flag.IntVar(&o.feedbackBuffer, "feedback-buffer", 4096, "buffered-ack queue entries for POST /feedback while the owning shard is down (<0 disables buffering)")
	flag.DurationVar(&o.feedbackFlush, "feedback-flush-interval", 250*time.Millisecond, "how often buffered feedback is retried against its owning shard")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-router:", err)
		os.Exit(1)
	}
}

// parseShards turns the -shards flag into named shard configs. Names are
// positional (shard-0, shard-1, ...) unless an entry is name=url.
func parseShards(spec string) ([]cluster.ShardConfig, error) {
	var out []cluster.ShardConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sc := cluster.ShardConfig{Name: fmt.Sprintf("shard-%d", len(out)), URL: part}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			sc.Name, sc.URL = name, url
		}
		if !strings.HasPrefix(sc.URL, "http://") && !strings.HasPrefix(sc.URL, "https://") {
			return nil, fmt.Errorf("shard %q is not an http(s) URL", part)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards names no shards")
	}
	return out, nil
}

// buildRouter assembles the router from the parsed options.
func buildRouter(o options) (*cluster.Router, error) {
	shards, err := parseShards(o.shardSpec)
	if err != nil {
		return nil, err
	}
	if o.retrieval != "" {
		if o.retrieval != "exact" && o.retrieval != "ivf" {
			return nil, fmt.Errorf("-retrieval %q: want exact or ivf", o.retrieval)
		}
		for i := range shards {
			shards[i].Retrieval = o.retrieval
		}
	}
	var train *dataset.Dataset
	if o.trainPath != "" {
		f, err := os.Open(o.trainPath)
		if err != nil {
			return nil, err
		}
		train, err = clapf.ReadDatasetTSV(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	seed := o.seed
	if seed == 0 {
		// Clock-seeded on purpose: a fleet of routers restarted together
		// must not share one jitter schedule.
		seed = uint64(time.Now().UnixNano())
	}
	return cluster.NewRouter(cluster.Config{
		Shards:         shards,
		Train:          train,
		VNodes:         o.vnodes,
		MaxRetries:     o.maxRetries,
		AttemptTimeout: o.attemptTimeout,
		NoHedge:        o.noHedge,
		StaleCacheSize: o.staleCache,
		Quorum:         o.quorum,
		Breaker:        cluster.BreakerConfig{FailureThreshold: o.breakFailures, Cooldown: o.breakCooldown},
		Probe:          cluster.ProbeConfig{Interval: o.probeInterval, Timeout: o.probeTimeout},
		Feedback:       cluster.FeedbackConfig{BufferSize: o.feedbackBuffer, FlushInterval: o.feedbackFlush},
		Seed:           seed,
	})
}

func run(o options) error {
	logger := obs.NewTextLogger(os.Stderr, slog.LevelInfo)

	router, err := buildRouter(o)
	if err != nil {
		return err
	}
	router.SetLogger(logger)
	stopProber := router.StartProber()
	defer stopProber()
	stopFlusher := router.StartFeedbackFlusher()
	defer stopFlusher()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.boundAddr != nil {
		o.boundAddr <- ln.Addr().String()
	}

	httpServer := &http.Server{
		Handler:           router.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("routing", "addr", ln.Addr().String(),
			"shards", strings.Join(router.ShardNames(), ","))
		errCh <- httpServer.Serve(ln)
	}()

	stop := o.sigCh
	if stop == nil {
		stop = make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
		defer signal.Stop(stop)
	}
	// reloading serializes SIGHUP sweeps without blocking the signal
	// loop: a reload mid-flight means a second SIGHUP is dropped (the
	// sweep it would start is already running).
	reloading := make(chan struct{}, 1)
	for {
		select {
		case err := <-errCh:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case sig := <-stop:
			if sig == syscall.SIGHUP {
				select {
				case reloading <- struct{}{}:
					go func() {
						defer func() { <-reloading }()
						if err := router.RollingReload(context.Background()); err != nil {
							logger.Error("rolling reload failed", "err", err)
						} else {
							logger.Info("rolling reload complete")
						}
					}()
				default:
					logger.Warn("rolling reload already in progress; SIGHUP ignored")
				}
				continue
			}
			logger.Info("draining", "signal", sig.String())
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			shutdownErr := httpServer.Shutdown(ctx)
			if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				return serveErr
			}
			if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
				return shutdownErr
			}
			logger.Info("stopped")
			return nil
		}
	}
}

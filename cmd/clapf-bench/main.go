// Command clapf-bench regenerates the paper's tables and figures on
// synthetic datasets with the Table 1 corpus shapes.
//
// Usage:
//
//	clapf-bench -exp table1 [-scale 0.1]
//	clapf-bench -exp table2 -dataset ML100K [-scale 0.25] [-reps 3]
//	clapf-bench -exp fig2   -dataset ML100K [-scale 0.25]
//	clapf-bench -exp fig3   -dataset ML100K [-scale 0.25] [-csv]
//	clapf-bench -exp fig4   -dataset ML100K [-scale 0.25] [-csv]
//	clapf-bench -exp parallel -dataset ML100K [-workers 1,2,4] [-json out.json]
//	clapf-bench -exp serve    -dataset ML100K [-requests 2000] [-batch 64] [-json out.json]
//	clapf-bench -exp guard    -dataset ML100K [-workers 1,2,4] [-clip-norm 10] [-json out.json]
//	clapf-bench -exp trace    -dataset ML100K [-requests 2000] [-rounds 3] [-json out.json]
//	clapf-bench -exp cluster  -dataset ML100K [-shards 3] [-requests 2000] [-load-workers 8] [-json out.json]
//	clapf-bench -exp retrieval -dataset ML20M -scale 1 [-nlist 0] [-nprobe 0] [-bench-users 1200] [-json out.json]
//	clapf-bench -exp ingest   -dataset ML100K [-events 8192] [-requests 2000] [-json out.json]
//
// Each experiment prints an aligned text table (or CSV with -csv where
// supported) matching the corresponding table/figure of the paper. The
// parallel experiment measures Hogwild training and evaluation scaling
// across worker counts; the serve experiment drives the recommendation
// HTTP stack in-process and compares single, batch, and cached serving
// throughput; the guard experiment reruns the parallel workload with the
// training guardrails armed (loss watchdog, non-finite sentinels, gradient
// clipping) and reports the throughput overhead; the trace experiment
// A/B-tests request tracing on the serve and train paths and certifies
// that a slow request is tail-captured in the flight recorder; the
// cluster experiment stands up a sharded serving tier (router + N
// in-process shards) and measures availability, degradation labeling,
// and tail latency under shard kills, injected latency, and torn
// responses; the retrieval experiment answers the same top-K queries with
// the dense exact kernel and the cluster-pruned IVF index and reports the
// throughput ratio alongside recall@10 against the exact ranking; the
// ingest experiment measures feedback WAL append throughput and durable
// ack latency across fsync batching levels, then the /recommend p95
// overhead of serving with a live online-update stream. For these,
// -json additionally writes the machine-readable report consumed by
// scripts/bench.sh.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"clapf/internal/datagen"
	"clapf/internal/experiments"
	"clapf/internal/retrieval"
	"clapf/internal/sampling"
)

func main() {
	var (
		exp     = flag.String("exp", "table2", "experiment: table1, table2, fig2, fig3, fig4, parallel, serve, guard, trace, cluster, retrieval, ingest")
		ds      = flag.String("dataset", "ML100K", "Table 1 dataset profile")
		scale   = flag.Float64("scale", 0.25, "dataset scale factor (1 = full size)")
		reps    = flag.Int("reps", 3, "replicate splits to average")
		epochs  = flag.Int("epochs", 240, "epoch-equivalents of SGD per MF method")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		maxEval = flag.Int("evalusers", 500, "max users evaluated per replicate (0 = all)")
		asCSV   = flag.Bool("csv", false, "emit CSV instead of a text table")
		workers = flag.String("workers", "1,2,4", "comma-separated worker counts for -exp parallel")
		jsonOut = flag.String("json", "", "also write the parallel/serve report as JSON to this path (- = stdout)")
		reqs    = flag.Int("requests", 2000, "recommendation lists to serve per phase for -exp serve")
		batch   = flag.Int("batch", 64, "entries per /recommend/batch request for -exp serve")
		kitems  = flag.Int("kernel-items", 1<<19, "synthetic catalog items for the float32-vs-float64 kernel arms of -exp serve (0 skips them)")
		clip    = flag.Float64("clip-norm", 10, "gradient clip threshold for the guarded arm of -exp guard")
		rounds  = flag.Int("rounds", 3, "alternating best-of rounds per arm for -exp trace")
		shards  = flag.Int("shards", 3, "serve shards behind the router for -exp cluster")
		load    = flag.Int("load-workers", 8, "concurrent load-generator workers for -exp cluster")
		nlist   = flag.Int("nlist", 0, "IVF cell count for -exp retrieval (0 = default)")
		nprobe  = flag.Int("nprobe", 0, "IVF probe width for -exp retrieval (0 = default)")
		bu      = flag.Int("bench-users", 1200, "user-base cap for -exp retrieval (full item catalog; 0 = no cap)")
		evs     = flag.Int("events", 8192, "feedback events per WAL append arm for -exp ingest")
	)
	flag.Parse()

	if err := run(os.Stdout, *exp, *ds, *scale, *reps, *epochs, *seed, *maxEval, *asCSV, *workers, *jsonOut, *reqs, *batch, *kitems, *clip, *rounds, *shards, *load, *nlist, *nprobe, *bu, *evs); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-bench:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, exp, ds string, scale float64, reps, epochs int, seed uint64, maxEval int, asCSV bool, workers, jsonOut string, requests, batch, kernelItems int, clipNorm float64, rounds, shards, loadWorkers, nlist, nprobe, benchUsers, events int) error {
	setup, err := experiments.DefaultSetup(ds, scale)
	if err != nil {
		return err
	}
	setup.Replicates = reps
	setup.Seed = seed
	setup.EvalMaxUsers = maxEval
	setup.Budget.EpochEquivalents = epochs

	switch exp {
	case "table1":
		stats, err := experiments.Table1Stats(datagen.Table1Profiles, scale, seed)
		if err != nil {
			return err
		}
		return experiments.RenderTable1(out, stats)

	case "table2", "fig2":
		methods := experiments.Table2Methods(setup.Profile.Name, setup.Budget)
		rows, curves, err := experiments.RunComparison(setup, methods)
		if err != nil {
			return err
		}
		if exp == "table2" {
			if asCSV {
				fmt.Fprint(out, experiments.CSVTable2(rows))
				return nil
			}
			if err := experiments.RenderTable2(out, setup.Profile.Name, rows); err != nil {
				return err
			}
			if reps >= 2 {
				sig, err := experiments.SignificanceVsBaseline(rows, "BPR")
				if err != nil {
					return err
				}
				fmt.Fprintln(out, "\npaired t-test on NDCG@5 vs BPR (same splits):")
				for _, r := range rows {
					if res, ok := sig[r.Method]; ok {
						fmt.Fprintf(out, "  %-20s t=%+.2f p=%.3f\n", r.Method, res.T, res.P)
					}
				}
			}
			return nil
		}
		if asCSV {
			fmt.Fprint(out, experiments.CSVTopKCurves(curves))
			return nil
		}
		return experiments.RenderTopKCurves(out, setup.Profile.Name, curves)

	case "fig3":
		for _, variant := range []sampling.Objective{sampling.MAP, sampling.MRR} {
			points, err := experiments.RunLambdaSweep(setup, variant)
			if err != nil {
				return err
			}
			if asCSV {
				fmt.Fprintf(out, "# CLAPF-%s\n%s", variant, experiments.CSVLambdaSweep(points))
				continue
			}
			if err := experiments.RenderLambdaSweep(out, setup.Profile.Name, variant.String(), points); err != nil {
				return err
			}
		}
		return nil

	case "fig4":
		traces, err := experiments.RunConvergence(setup, sampling.MAP, 10)
		if err != nil {
			return err
		}
		if asCSV {
			fmt.Fprint(out, experiments.CSVConvergence(traces))
			return nil
		}
		return experiments.RenderConvergence(out, setup.Profile.Name, traces)

	case "parallel":
		counts, err := parseWorkerCounts(workers)
		if err != nil {
			return err
		}
		bench, err := experiments.RunParallelBench(setup, counts, epochs)
		if err != nil {
			return err
		}
		if err := experiments.RenderParallelBench(out, bench); err != nil {
			return err
		}
		return writeParallelJSON(out, jsonOut, bench)

	case "serve":
		bench, err := experiments.RunServeBench(setup, requests, batch, kernelItems)
		if err != nil {
			return err
		}
		if err := experiments.RenderServeBench(out, bench); err != nil {
			return err
		}
		return writeJSONReport(out, jsonOut, func(w io.Writer) error {
			return experiments.WriteServeBenchJSON(w, bench)
		})

	case "guard":
		counts, err := parseWorkerCounts(workers)
		if err != nil {
			return err
		}
		bench, err := experiments.RunGuardBench(setup, counts, epochs, clipNorm)
		if err != nil {
			return err
		}
		if err := experiments.RenderGuardBench(out, bench); err != nil {
			return err
		}
		return writeJSONReport(out, jsonOut, func(w io.Writer) error {
			return experiments.WriteGuardBenchJSON(w, bench)
		})

	case "trace":
		bench, err := experiments.RunTraceBench(setup, requests, epochs, rounds)
		if err != nil {
			return err
		}
		if err := experiments.RenderTraceBench(out, bench); err != nil {
			return err
		}
		return writeJSONReport(out, jsonOut, func(w io.Writer) error {
			return experiments.WriteTraceBenchJSON(w, bench)
		})

	case "cluster":
		bench, err := experiments.RunClusterBench(setup, shards, requests, loadWorkers)
		if err != nil {
			return err
		}
		if err := experiments.RenderClusterBench(out, bench); err != nil {
			return err
		}
		return writeJSONReport(out, jsonOut, func(w io.Writer) error {
			return experiments.WriteClusterBenchJSON(w, bench)
		})

	case "retrieval":
		bench, err := experiments.RunRetrievalBench(setup, benchUsers,
			retrieval.Config{NLists: nlist, NProbe: nprobe, Seed: seed})
		if err != nil {
			return err
		}
		if err := experiments.RenderRetrievalBench(out, bench); err != nil {
			return err
		}
		return writeJSONReport(out, jsonOut, func(w io.Writer) error {
			return experiments.WriteRetrievalBenchJSON(w, bench)
		})

	case "ingest":
		bench, err := experiments.RunIngestBench(setup, events, requests)
		if err != nil {
			return err
		}
		if err := experiments.RenderIngestBench(out, bench); err != nil {
			return err
		}
		return writeJSONReport(out, jsonOut, func(w io.Writer) error {
			return experiments.WriteIngestBenchJSON(w, bench)
		})

	default:
		return fmt.Errorf("unknown experiment %q (want table1, table2, fig2, fig3, fig4, parallel, serve, guard, trace, cluster, retrieval, ingest)", exp)
	}
}

func parseWorkerCounts(spec string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q (want positive integers)", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-workers %q names no worker counts", spec)
	}
	return counts, nil
}

func writeParallelJSON(out io.Writer, path string, bench *experiments.ParallelBench) error {
	return writeJSONReport(out, path, func(w io.Writer) error {
		return experiments.WriteParallelBenchJSON(w, bench)
	})
}

func writeJSONReport(out io.Writer, path string, write func(io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return write(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

import (
	"io"
	"testing"
)

// The bench CLI's run function is exercised at miniature scale so every
// experiment path stays wired; the real reproduction runs use the flags
// documented in the package comment.
func TestRunAllExperimentsTiny(t *testing.T) {
	for _, exp := range []string{"table1", "table2", "fig2", "fig3", "fig4"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			// scale 0.05, 1 rep, 2 epoch-equivalents: seconds, not minutes.
			if err := run(io.Discard, exp, "ML100K", 0.05, 1, 2, 1, 30, false); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunCSVModes(t *testing.T) {
	for _, exp := range []string{"table2", "fig2", "fig3", "fig4"} {
		if err := run(io.Discard, exp, "ML100K", 0.05, 1, 2, 1, 30, true); err != nil {
			t.Fatalf("%s csv: %v", exp, err)
		}
	}
}

func TestRunUnknowns(t *testing.T) {
	if err := run(io.Discard, "nope", "ML100K", 0.1, 1, 1, 1, 10, false); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(io.Discard, "table2", "bogus", 0.1, 1, 1, 1, 10, false); err == nil {
		t.Error("unknown dataset accepted")
	}
}

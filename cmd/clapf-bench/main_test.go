package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"clapf/internal/experiments"
)

// The bench CLI's run function is exercised at miniature scale so every
// experiment path stays wired; the real reproduction runs use the flags
// documented in the package comment.
func TestRunAllExperimentsTiny(t *testing.T) {
	for _, exp := range []string{"table1", "table2", "fig2", "fig3", "fig4"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			// scale 0.05, 1 rep, 2 epoch-equivalents: seconds, not minutes.
			if err := run(io.Discard, exp, "ML100K", 0.05, 1, 2, 1, 30, false, "", "", 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunCSVModes(t *testing.T) {
	for _, exp := range []string{"table2", "fig2", "fig3", "fig4"} {
		if err := run(io.Discard, exp, "ML100K", 0.05, 1, 2, 1, 30, true, "", "", 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
			t.Fatalf("%s csv: %v", exp, err)
		}
	}
}

func TestRunParallelExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "parallel.json")
	if err := run(io.Discard, "parallel", "ML100K", 0.05, 1, 2, 1, 30, false, "1,2", jsonPath, 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json report: %v", err)
	}
	var bench experiments.ParallelBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("decode json report: %v", err)
	}
	if len(bench.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(bench.Rows))
	}
	if bench.Rows[0].Workers != 1 || bench.Rows[1].Workers != 2 {
		t.Errorf("worker counts = %d,%d, want 1,2", bench.Rows[0].Workers, bench.Rows[1].Workers)
	}
	if bench.Rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", bench.Rows[0].Speedup)
	}
	for _, r := range bench.Rows {
		if r.StepsPerSec <= 0 {
			t.Errorf("workers=%d: steps/sec = %v, want > 0", r.Workers, r.StepsPerSec)
		}
	}
	if bench.Cores < 1 {
		t.Errorf("cores = %d, want >= 1", bench.Cores)
	}
}

func TestRunServeExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "serve.json")
	if err := run(io.Discard, "serve", "ML100K", 0.05, 1, 2, 1, 30, false, "", jsonPath, 30, 8, 512, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
		t.Fatalf("serve: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json report: %v", err)
	}
	var bench experiments.ServeBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("decode json report: %v", err)
	}
	if len(bench.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (single, batch, cached)", len(bench.Rows))
	}
	for _, r := range bench.Rows {
		if r.RecsPerSec <= 0 {
			t.Errorf("%s: recs/sec = %v, want > 0", r.Path, r.RecsPerSec)
		}
	}
	if bench.BatchSpeedup <= 0 || bench.CachedSpeedup <= 0 {
		t.Errorf("speedups = %v, %v, want > 0", bench.BatchSpeedup, bench.CachedSpeedup)
	}
	if bench.F32 == nil || bench.F32.KernelItems != 512 {
		t.Fatalf("f32 kernel arms missing from report: %+v", bench.F32)
	}
	if bench.F32.F32ScanUsersPerSec <= 0 || bench.F32.ParamBytesRatio <= 0 {
		t.Errorf("f32 arms implausible: %+v", bench.F32)
	}
}

func TestRunGuardExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "guard.json")
	if err := run(io.Discard, "guard", "ML100K", 0.05, 1, 2, 1, 30, false, "1,2", jsonPath, 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
		t.Fatalf("guard: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json report: %v", err)
	}
	var bench experiments.GuardBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("decode json report: %v", err)
	}
	if len(bench.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(bench.Rows))
	}
	if bench.ClipNorm != 10 {
		t.Errorf("clip norm = %v, want 10", bench.ClipNorm)
	}
	for _, r := range bench.Rows {
		if r.BaseStepsPerSec <= 0 || r.GuardedStepsPerSec <= 0 {
			t.Errorf("workers=%d: steps/sec %v / %v, want > 0", r.Workers, r.BaseStepsPerSec, r.GuardedStepsPerSec)
		}
	}
}

func TestRunUnknowns(t *testing.T) {
	if err := run(io.Discard, "nope", "ML100K", 0.1, 1, 1, 1, 10, false, "", "", 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(io.Discard, "table2", "bogus", 0.1, 1, 1, 1, 10, false, "", "", 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(io.Discard, "parallel", "ML100K", 0.05, 1, 1, 1, 10, false, "0,2", "", 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err == nil {
		t.Error("zero worker count accepted")
	}
	if err := run(io.Discard, "parallel", "ML100K", 0.05, 1, 1, 1, 10, false, " , ", "", 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err == nil {
		t.Error("empty worker list accepted")
	}
	if err := run(io.Discard, "guard", "ML100K", 0.05, 1, 1, 1, 10, false, "1", "", 20, 4, 0, 0, 1, 3, 4, 0, 0, 50, 256); err == nil {
		t.Error("non-positive clip norm accepted for -exp guard")
	}
	if err := run(io.Discard, "cluster", "ML100K", 0.05, 1, 1, 1, 10, false, "", "", 40, 4, 0, 10, 1, 1, 4, 0, 0, 50, 256); err == nil {
		t.Error("single-shard cluster bench accepted")
	}
}

func TestRunClusterExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "cluster.json")
	if err := run(io.Discard, "cluster", "ML100K", 0.05, 1, 2, 1, 30, false, "", jsonPath, 80, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
		t.Fatalf("cluster: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json report: %v", err)
	}
	var bench experiments.ClusterBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("decode json report: %v", err)
	}
	if bench.Shards != 3 {
		t.Errorf("shards = %d, want 3", bench.Shards)
	}
	if len(bench.Phases) != 5 {
		t.Fatalf("phases = %d, want 5", len(bench.Phases))
	}
	for _, p := range bench.Phases {
		if p.QPS <= 0 {
			t.Errorf("phase %s: qps = %v, want > 0", p.Phase, p.QPS)
		}
	}
	if bench.AvailabilityOneDown < 0.99 {
		t.Errorf("one-shard-down availability = %v, want >= 0.99", bench.AvailabilityOneDown)
	}
	if !bench.VictimReadmitted {
		t.Error("victim shard never readmitted after recovery")
	}
}

func TestRunTraceExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "trace.json")
	if err := run(io.Discard, "trace", "ML100K", 0.05, 1, 2, 1, 30, false, "", jsonPath, 30, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
		t.Fatalf("trace: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json report: %v", err)
	}
	var bench experiments.TraceBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("decode json report: %v", err)
	}
	for _, arm := range []experiments.TraceBenchArm{bench.Traced, bench.Untraced} {
		if arm.ServeRecsPerSec <= 0 || arm.TrainStepsPerSec <= 0 {
			t.Errorf("arm traced=%v: serve %v recs/s, train %v steps/s, want > 0",
				arm.Traced, arm.ServeRecsPerSec, arm.TrainStepsPerSec)
		}
	}
	if !bench.SlowCaptureOK {
		t.Error("slow-request tail capture not certified")
	}
	if bench.SlowCaptureSpans < 2 {
		t.Errorf("slow capture spans = %d, want >= 2 (root + child)", bench.SlowCaptureSpans)
	}
}

func TestRunIngestExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "ingest.json")
	if err := run(io.Discard, "ingest", "ML100K", 0.05, 1, 2, 1, 30, false, "", jsonPath, 20, 4, 0, 10, 1, 3, 4, 0, 0, 50, 256); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json report: %v", err)
	}
	var bench experiments.IngestBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("decode json report: %v", err)
	}
	if len(bench.Appends) != 3 {
		t.Fatalf("append rows = %d, want 3 (fsync-every 1, 8, 64)", len(bench.Appends))
	}
	for i, want := range []int{1, 8, 64} {
		r := bench.Appends[i]
		if r.SyncEvery != want {
			t.Errorf("row %d: sync_every = %d, want %d", i, r.SyncEvery, want)
		}
		if r.EventsPerSec <= 0 || r.Events <= 0 {
			t.Errorf("row %d: %d events at %v/s, want > 0", i, r.Events, r.EventsPerSec)
		}
	}
	s := bench.Serve
	if s.BaselineP95ms <= 0 || s.IngestP95ms <= 0 {
		t.Errorf("serve overhead p95s = %v / %v, want > 0", s.BaselineP95ms, s.IngestP95ms)
	}
	if s.ConcurrentEvents <= 0 {
		t.Errorf("concurrent events = %d, want > 0 (stream never ran)", s.ConcurrentEvents)
	}
}

func TestRunRetrievalExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "retrieval.json")
	// Full probe width (nlist == nprobe == 4) so IVF recall must be
	// exactly 1 even at this miniature scale.
	if err := run(io.Discard, "retrieval", "ML100K", 0.05, 1, 2, 1, 30, false, "", jsonPath, 20, 4, 0, 10, 1, 3, 4, 4, 4, 50, 256); err != nil {
		t.Fatalf("retrieval: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json report: %v", err)
	}
	var bench experiments.RetrievalBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("decode json report: %v", err)
	}
	if len(bench.Rows) != 2 || bench.Rows[0].Path != "exact" || bench.Rows[1].Path != "ivf" {
		t.Fatalf("rows = %+v, want exact then ivf", bench.Rows)
	}
	if bench.Users <= 0 || bench.Users > 50 {
		t.Errorf("bench users = %d, want in (0, 50] (cap applied)", bench.Users)
	}
	if bench.NList != 4 || bench.NProbe != 4 {
		t.Errorf("index shape = (%d, %d), want (4, 4)", bench.NList, bench.NProbe)
	}
	if bench.Rows[1].Recall10 != 1 {
		t.Errorf("full-probe IVF recall = %v, want exactly 1", bench.Rows[1].Recall10)
	}
	for _, r := range bench.Rows {
		if r.UsersPerSec <= 0 {
			t.Errorf("%s: users/sec = %v, want > 0", r.Path, r.UsersPerSec)
		}
	}
}

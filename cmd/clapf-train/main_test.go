package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"clapf"
)

func writeDataset(t *testing.T, path string, seed uint64) {
	t.Helper()
	p := clapf.Profile{
		Name: "cli", Users: 40, Items: 80, Pairs: 800,
		ZipfExp: 0.7, Dim: 4, Affinity: 5,
	}
	d, err := clapf.GenerateDataset(p, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := clapf.WriteDatasetTSV(f, d); err != nil {
		t.Fatal(err)
	}
}

func baseOptions(trainPath string) options {
	return options{
		trainPath: trainPath,
		variant:   "map",
		lambda:    0.3,
		dim:       8,
		epochs:    5,
		rate:      0.05,
		reg:       0.01,
		seed:      3,
	}
}

func TestTrainEvaluateSave(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	testPath := filepath.Join(dir, "test.tsv")
	modelPath := filepath.Join(dir, "m.clapf")
	writeDataset(t, trainPath, 1)
	writeDataset(t, testPath, 2)

	o := baseOptions(trainPath)
	o.testPath = testPath
	o.outPath = modelPath
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	m, err := clapf.LoadModelFile(modelPath)
	if err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
	if m.Dim() != 8 {
		t.Errorf("model dim = %d, want 8", m.Dim())
	}
}

func TestTrainMRRWithDSS(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 3)
	o := baseOptions(trainPath)
	o.variant = "mrr"
	o.lambda = 0.2
	o.dss = true
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
}

var (
	telemetryLineRE = regexp.MustCompile(
		`msg=telemetry step=\d+ total=\d+ loss=\d+\.\d{4} grad_mag=\d+\.\d{4} steps_per_sec=\d+ elapsed=\S+`)
	summaryLineRE = regexp.MustCompile(
		`(?m)^trained \d+ steps in \S+ \(\d+ steps/s\), final smoothed loss \d+\.\d{4}$`)
)

func TestTelemetryAndSummaryFormat(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	testPath := filepath.Join(dir, "test.tsv")
	writeDataset(t, trainPath, 5)
	writeDataset(t, testPath, 6)

	var out bytes.Buffer
	o := baseOptions(trainPath)
	o.testPath = testPath
	o.epochs = 4
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	// One telemetry line per epoch-equivalent (default interval).
	lines := telemetryLineRE.FindAllString(text, -1)
	if len(lines) != 4 {
		t.Errorf("got %d telemetry lines, want 4; output:\n%s", len(lines), text)
	}
	if !summaryLineRE.MatchString(text) {
		t.Errorf("summary line missing or malformed in:\n%s", text)
	}
	// Eval timing phases surface in the evaluation header.
	if !regexp.MustCompile(`evaluated \d+ users in total \S+ \(score \S+, rank \S+, metrics \S+\):`).MatchString(text) {
		t.Errorf("eval timing missing in:\n%s", text)
	}
}

func TestLogEveryOverride(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 7)

	var out bytes.Buffer
	o := baseOptions(trainPath)
	o.epochs = 2
	o.logEvery = 100 // pairs ≈ hundreds, so this yields many lines
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if n := len(telemetryLineRE.FindAllString(out.String(), -1)); n < 4 {
		t.Errorf("got %d telemetry lines with -log-every=100, want several", n)
	}
}

func TestMetricsOutDump(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	dumpPath := filepath.Join(dir, "telemetry.json")
	writeDataset(t, trainPath, 8)

	var out bytes.Buffer
	o := baseOptions(trainPath)
	o.dss = true
	o.metricsOut = dumpPath
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetryDump
	if err := json.Unmarshal(buf, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Variant != "MAP" || !dump.DSS {
		t.Errorf("dump header = %+v", dump)
	}
	if dump.Steps == 0 || dump.FinalSmoothedLoss <= 0 || dump.StepsPerSec <= 0 {
		t.Errorf("dump totals = %+v", dump)
	}
	if len(dump.Intervals) != o.epochs {
		t.Errorf("dump has %d intervals, want %d", len(dump.Intervals), o.epochs)
	}
	if dump.NegDraws.Count == 0 || dump.PosDraws.Count == 0 {
		t.Error("DSS draw histograms empty in dump")
	}
	if !strings.Contains(out.String(), "DSS draws: mean positive rank") {
		t.Errorf("DSS draw summary missing in:\n%s", out.String())
	}
}

func TestTrainErrors(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 4)

	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"missing -train", func(o *options) { o.trainPath = "" }},
		{"unknown variant", func(o *options) { o.variant = "bogus" }},
		{"lambda out of range", func(o *options) { o.lambda = 7 }},
		{"missing training file", func(o *options) { o.trainPath = filepath.Join(dir, "absent.tsv") }},
	}
	for _, c := range cases {
		o := baseOptions(trainPath)
		o.epochs = 1
		c.mut(&o)
		if err := run(io.Discard, o); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"clapf"
)

func writeDataset(t *testing.T, path string, seed uint64) {
	t.Helper()
	p := clapf.Profile{
		Name: "cli", Users: 40, Items: 80, Pairs: 800,
		ZipfExp: 0.7, Dim: 4, Affinity: 5,
	}
	d, err := clapf.GenerateDataset(p, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := clapf.WriteDatasetTSV(f, d); err != nil {
		t.Fatal(err)
	}
}

func TestTrainEvaluateSave(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	testPath := filepath.Join(dir, "test.tsv")
	modelPath := filepath.Join(dir, "m.clapf")
	writeDataset(t, trainPath, 1)
	writeDataset(t, testPath, 2)

	err := run(trainPath, testPath, "map", 0.3, false, 8, 5, 0.05, 0.01, 3, modelPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := clapf.LoadModelFile(modelPath)
	if err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
	if m.Dim() != 8 {
		t.Errorf("model dim = %d, want 8", m.Dim())
	}
}

func TestTrainMRRWithDSS(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 3)
	if err := run(trainPath, "", "mrr", 0.2, true, 8, 5, 0.05, 0.01, 3, ""); err != nil {
		t.Fatal(err)
	}
}

func TestTrainErrors(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 4)

	if err := run("", "", "map", 0.3, false, 8, 1, 0.05, 0.01, 1, ""); err == nil {
		t.Error("missing -train accepted")
	}
	if err := run(trainPath, "", "bogus", 0.3, false, 8, 1, 0.05, 0.01, 1, ""); err == nil {
		t.Error("unknown variant accepted")
	}
	if err := run(trainPath, "", "map", 7, false, 8, 1, 0.05, 0.01, 1, ""); err == nil {
		t.Error("λ out of range accepted")
	}
	if err := run(filepath.Join(dir, "absent.tsv"), "", "map", 0.3, false, 8, 1, 0.05, 0.01, 1, ""); err == nil {
		t.Error("missing training file accepted")
	}
}

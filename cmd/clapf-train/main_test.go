package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"clapf"
	"clapf/internal/fault"
	"clapf/internal/store"
)

func writeDataset(t *testing.T, path string, seed uint64) {
	t.Helper()
	p := clapf.Profile{
		Name: "cli", Users: 40, Items: 80, Pairs: 800,
		ZipfExp: 0.7, Dim: 4, Affinity: 5,
	}
	d, err := clapf.GenerateDataset(p, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := clapf.WriteDatasetTSV(f, d); err != nil {
		t.Fatal(err)
	}
}

func baseOptions(trainPath string) options {
	return options{
		trainPath: trainPath,
		variant:   "map",
		lambda:    0.3,
		dim:       8,
		epochs:    5,
		rate:      0.05,
		reg:       0.01,
		seed:      3,
		workers:   1,
	}
}

func TestTrainEvaluateSave(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	testPath := filepath.Join(dir, "test.tsv")
	modelPath := filepath.Join(dir, "m.clapf")
	writeDataset(t, trainPath, 1)
	writeDataset(t, testPath, 2)

	o := baseOptions(trainPath)
	o.testPath = testPath
	o.outPath = modelPath
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	m, err := clapf.LoadModelFile(modelPath)
	if err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
	if m.Dim() != 8 {
		t.Errorf("model dim = %d, want 8", m.Dim())
	}
}

func TestTrainMRRWithDSS(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 3)
	o := baseOptions(trainPath)
	o.variant = "mrr"
	o.lambda = 0.2
	o.dss = true
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
}

var (
	telemetryLineRE = regexp.MustCompile(
		`msg=telemetry step=\d+ total=\d+ loss=\d+\.\d{4} grad_mag=\d+\.\d{4} steps_per_sec=\d+ elapsed=\S+`)
	summaryLineRE = regexp.MustCompile(
		`(?m)^trained \d+ steps in \S+ \(\d+ steps/s\), final smoothed loss \d+\.\d{4}$`)
)

func TestTelemetryAndSummaryFormat(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	testPath := filepath.Join(dir, "test.tsv")
	writeDataset(t, trainPath, 5)
	writeDataset(t, testPath, 6)

	var out bytes.Buffer
	o := baseOptions(trainPath)
	o.testPath = testPath
	o.epochs = 4
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	// One telemetry line per epoch-equivalent (default interval).
	lines := telemetryLineRE.FindAllString(text, -1)
	if len(lines) != 4 {
		t.Errorf("got %d telemetry lines, want 4; output:\n%s", len(lines), text)
	}
	if !summaryLineRE.MatchString(text) {
		t.Errorf("summary line missing or malformed in:\n%s", text)
	}
	// Eval timing phases surface in the evaluation header.
	if !regexp.MustCompile(`evaluated \d+ users in total \S+ \(score \S+, rank \S+, metrics \S+\):`).MatchString(text) {
		t.Errorf("eval timing missing in:\n%s", text)
	}
}

func TestLogEveryOverride(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 7)

	var out bytes.Buffer
	o := baseOptions(trainPath)
	o.epochs = 2
	o.logEvery = 100 // pairs ≈ hundreds, so this yields many lines
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if n := len(telemetryLineRE.FindAllString(out.String(), -1)); n < 4 {
		t.Errorf("got %d telemetry lines with -log-every=100, want several", n)
	}
}

func TestMetricsOutDump(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	dumpPath := filepath.Join(dir, "telemetry.json")
	writeDataset(t, trainPath, 8)

	var out bytes.Buffer
	o := baseOptions(trainPath)
	o.dss = true
	o.metricsOut = dumpPath
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetryDump
	if err := json.Unmarshal(buf, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Variant != "MAP" || !dump.DSS {
		t.Errorf("dump header = %+v", dump)
	}
	if dump.Steps == 0 || dump.FinalSmoothedLoss <= 0 || dump.StepsPerSec <= 0 {
		t.Errorf("dump totals = %+v", dump)
	}
	if len(dump.Intervals) != o.epochs {
		t.Errorf("dump has %d intervals, want %d", len(dump.Intervals), o.epochs)
	}
	if dump.NegDraws.Count == 0 || dump.PosDraws.Count == 0 {
		t.Error("DSS draw histograms empty in dump")
	}
	if !strings.Contains(out.String(), "DSS draws: mean positive rank") {
		t.Errorf("DSS draw summary missing in:\n%s", out.String())
	}
}

// finalLoss runs clapf-train with a telemetry dump and returns the final
// smoothed loss.
func finalLoss(t *testing.T, o options) float64 {
	t.Helper()
	o.metricsOut = filepath.Join(t.TempDir(), "telemetry.json")
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	buf, err := os.ReadFile(o.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetryDump
	if err := json.Unmarshal(buf, &dump); err != nil {
		t.Fatal(err)
	}
	return dump.FinalSmoothedLoss
}

func TestCheckpointWriteAndSignalExit(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	ckptDir := filepath.Join(dir, "ckpt")
	writeDataset(t, trainPath, 11)

	o := baseOptions(trainPath)
	o.epochs = 3
	o.checkpointDir = ckptDir
	o.checkpointEvery = 300
	o.checkpointKeep = 2
	// Pre-loaded stop channel: the first batch finishes, then the run
	// checkpoints and exits cleanly — the SIGINT contract.
	o.stopCh = make(chan os.Signal, 1)
	o.stopCh <- os.Interrupt

	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatalf("interrupted run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"caught interrupt at step", "checkpoint written to", "interrupted at step"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// A loadable checkpoint with full metadata must exist.
	_, meta, path, _, err := store.LatestCheckpoint(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step == 0 || len(meta.RNG) != 4 || len(meta.SamplerRNG) != 4 || meta.DataFingerprint == 0 {
		t.Errorf("checkpoint %s metadata incomplete: %+v", path, meta)
	}
	if meta.Hyper["variant"] != "map" {
		t.Errorf("checkpoint hyper = %v", meta.Hyper)
	}
}

func TestCheckpointKeepsLastN(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	ckptDir := filepath.Join(dir, "ckpt")
	writeDataset(t, trainPath, 12)

	o := baseOptions(trainPath)
	o.epochs = 4
	o.checkpointDir = ckptDir
	o.checkpointEvery = 250
	o.checkpointKeep = 2
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	gens, err := store.ListCheckpoints(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Errorf("kept %d generations, want 2: %v", len(gens), gens)
	}
}

// TestChaosResumeAfterTornCheckpoint is the acceptance chaos test: a
// training run whose newest checkpoint generation was killed mid-write
// (torn file via internal/fault) must resume from the newest *valid*
// generation and reach a final smoothed loss within 5% of an
// uninterrupted run with the same seed.
func TestChaosResumeAfterTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	ckptDir := filepath.Join(dir, "ckpt")
	writeDataset(t, trainPath, 13)

	const fullEpochs = 6

	// Reference: one uninterrupted run.
	ref := baseOptions(trainPath)
	ref.epochs = fullEpochs
	refLoss := finalLoss(t, ref)

	// Phase 1: train half the budget with checkpoints on.
	half := baseOptions(trainPath)
	half.epochs = fullEpochs / 2
	half.checkpointDir = ckptDir
	half.checkpointKeep = 0 // keep everything; the crash sits on top
	if err := run(io.Discard, half); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the process "dies" while writing the next generation —
	// internal/fault leaves a torn checkpoint newer than every valid one.
	model, meta, _, _, err := store.LatestCheckpoint(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	tornMeta := *meta
	tornMeta.Step = meta.Step + 123
	tornPath := store.CheckpointPath(ckptDir, tornMeta.Step)
	if err := fault.CrashFile(tornPath, 512, func(w io.Writer) error {
		return store.SaveWithMeta(w, model, &tornMeta)
	}); err != nil {
		t.Fatal(err)
	}

	// Phase 3: resume to the full budget; the torn generation must be
	// skipped, the valid one restored.
	res := baseOptions(trainPath)
	res.epochs = fullEpochs
	res.checkpointDir = ckptDir
	res.resume = true
	res.metricsOut = filepath.Join(dir, "resumed.json")
	var out bytes.Buffer
	if err := run(&out, res); err != nil {
		t.Fatalf("resume failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "skipping invalid checkpoint "+tornPath) {
		t.Errorf("torn checkpoint not skipped:\n%s", text)
	}
	if !strings.Contains(text, "resumed from ") {
		t.Errorf("resume line missing:\n%s", text)
	}

	buf, err := os.ReadFile(res.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetryDump
	if err := json.Unmarshal(buf, &dump); err != nil {
		t.Fatal(err)
	}
	resLoss := dump.FinalSmoothedLoss
	if resLoss <= 0 || refLoss <= 0 {
		t.Fatalf("losses not tracked: ref %v, resumed %v", refLoss, resLoss)
	}
	if diff := math.Abs(resLoss - refLoss); diff > 0.05*refLoss {
		t.Errorf("resumed loss %v deviates from uninterrupted %v by %.1f%% (limit 5%%)",
			resLoss, refLoss, 100*diff/refLoss)
	}
}

func TestResumeRefusals(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	otherPath := filepath.Join(dir, "other.tsv")
	ckptDir := filepath.Join(dir, "ckpt")
	writeDataset(t, trainPath, 14)
	writeDataset(t, otherPath, 15)

	seeded := baseOptions(trainPath)
	seeded.epochs = 1
	seeded.checkpointDir = ckptDir
	if err := run(io.Discard, seeded); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"resume without dir", func(o *options) { o.checkpointDir = "" }},
		{"resume from empty dir", func(o *options) { o.checkpointDir = filepath.Join(dir, "empty") }},
		{"different dataset", func(o *options) { o.trainPath = otherPath }},
		{"different lambda", func(o *options) { o.lambda = 0.9 }},
		{"different seed", func(o *options) { o.seed = 999 }},
	}
	for _, c := range cases {
		o := baseOptions(trainPath)
		o.epochs = 2
		o.checkpointDir = ckptDir
		o.resume = true
		c.mut(&o)
		if err := run(io.Discard, o); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 4)

	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"missing -train", func(o *options) { o.trainPath = "" }},
		{"unknown variant", func(o *options) { o.variant = "bogus" }},
		{"lambda out of range", func(o *options) { o.lambda = 7 }},
		{"missing training file", func(o *options) { o.trainPath = filepath.Join(dir, "absent.tsv") }},
	}
	for _, c := range cases {
		o := baseOptions(trainPath)
		o.epochs = 1
		c.mut(&o)
		if err := run(io.Discard, o); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestParallelWorkersFlag(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	testPath := filepath.Join(dir, "test.tsv")
	dumpPath := filepath.Join(dir, "telemetry.json")
	promPath := filepath.Join(dir, "metrics.prom")
	writeDataset(t, trainPath, 21)
	writeDataset(t, testPath, 22)

	o := baseOptions(trainPath)
	o.testPath = testPath
	o.workers = 4
	o.metricsOut = dumpPath
	o.promOut = promPath
	var out strings.Builder
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 worker(s)") {
		t.Errorf("banner does not mention worker count:\n%s", out.String())
	}

	buf, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetryDump
	if err := json.Unmarshal(buf, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Workers != 4 || len(dump.WorkerStats) != 4 {
		t.Fatalf("dump has %d workers / %d worker stats, want 4/4", dump.Workers, len(dump.WorkerStats))
	}
	sum := 0
	for _, ws := range dump.WorkerStats {
		sum += ws.Steps
	}
	if sum != dump.Steps {
		t.Errorf("worker steps sum to %d, total is %d", sum, dump.Steps)
	}

	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clapf_train_workers 4", `clapf_train_worker_steps_total{worker="0"}`, `clapf_train_worker_steps_per_sec{worker="3"}`} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prom output missing %q:\n%s", want, prom)
		}
	}
}

func TestParallelCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	ckptDir := filepath.Join(dir, "ckpt")
	writeDataset(t, trainPath, 23)

	o := baseOptions(trainPath)
	o.workers = 2
	o.epochs = 1
	o.checkpointDir = ckptDir
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}

	// Continue the run with more epochs and the same worker count.
	res := baseOptions(trainPath)
	res.workers = 2
	res.epochs = 2
	res.checkpointDir = ckptDir
	res.resume = true
	var out strings.Builder
	if err := run(&out, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed from") {
		t.Errorf("no resume line in output:\n%s", out.String())
	}

	// A parallel checkpoint must not resume into a serial trainer (the
	// worker-count hyper check fires first, which is fine — both refuse).
	serial := baseOptions(trainPath)
	serial.epochs = 2
	serial.checkpointDir = ckptDir
	serial.resume = true
	if err := run(io.Discard, serial); err == nil {
		t.Error("serial resume of a parallel checkpoint succeeded")
	}

	// Nor into a different worker count.
	three := baseOptions(trainPath)
	three.workers = 3
	three.epochs = 2
	three.checkpointDir = ckptDir
	three.resume = true
	if err := run(io.Discard, three); err == nil {
		t.Error("resume with a different worker count succeeded")
	}
}

func TestWatchdogFlagValidation(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 40)

	o := baseOptions(trainPath)
	o.watchdog = true
	err := run(io.Discard, o)
	if err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Errorf("-watchdog without -checkpoint-dir: err = %v", err)
	}

	o = baseOptions(trainPath)
	o.watchdog = true
	o.checkpointDir = filepath.Join(dir, "ckpt")
	o.maxRollbacks = -1
	if err := run(io.Discard, o); err == nil {
		t.Error("-max-rollbacks -1 accepted")
	}
}

func TestClipNormCountsClips(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	promPath := filepath.Join(dir, "m.prom")
	writeDataset(t, trainPath, 41)

	o := baseOptions(trainPath)
	o.epochs = 3
	o.clipNorm = 0.001
	o.promOut = promPath
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^clapf_grad_clip_total (\d+)$`).FindSubmatch(prom)
	if m == nil {
		t.Fatalf("clapf_grad_clip_total missing from:\n%s", prom)
	}
	if string(m[1]) == "0" {
		t.Error("tight -clip-norm never clipped an update")
	}
}

func TestWatchdogCleanRun(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	promPath := filepath.Join(dir, "m.prom")
	writeDataset(t, trainPath, 42)

	var out bytes.Buffer
	o := baseOptions(trainPath)
	o.watchdog = true
	o.checkpointDir = filepath.Join(dir, "ckpt")
	o.promOut = promPath
	if err := run(&out, o); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "rolled back") {
		t.Errorf("healthy run rolled back:\n%s", out.String())
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clapf_train_rollbacks_total 0", "clapf_train_health 1"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics lack %q:\n%s", want, prom)
		}
	}
	// The up-front gated checkpoint plus the per-epoch cadence must all be
	// resumable generations.
	if _, _, _, _, err := store.LatestCheckpoint(o.checkpointDir); err != nil {
		t.Errorf("no usable checkpoint after a watchdog run: %v", err)
	}
}

func TestResumeRefusesClipNormChange(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	writeDataset(t, trainPath, 43)

	o := baseOptions(trainPath)
	o.checkpointDir = filepath.Join(dir, "ckpt")
	o.epochs = 2
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	// Clipping changes the trajectory: resuming an unclipped checkpoint
	// under -clip-norm must be refused like any other hyper change.
	o.resume = true
	o.epochs = 4
	o.clipNorm = 0.5
	err := run(io.Discard, o)
	if err == nil || !strings.Contains(err.Error(), "clip_norm") {
		t.Errorf("clip-norm change resumed: %v", err)
	}
}

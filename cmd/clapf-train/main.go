// Command clapf-train trains a CLAPF model on a TSV dataset, evaluates it
// against an optional test split, and saves the learned model.
//
// Usage:
//
//	clapf-train -train train.tsv [-test test.tsv] [-variant map|mrr]
//	            [-lambda 0.4] [-dss] [-epochs 30] [-out model.clapf]
//
// Dataset files use the clapf TSV format (see clapf-datagen or
// clapf.WriteDatasetTSV).
package main

import (
	"flag"
	"fmt"
	"os"

	"clapf"
)

func main() {
	var (
		trainPath = flag.String("train", "", "training dataset (TSV, required)")
		testPath  = flag.String("test", "", "test dataset (TSV, optional)")
		variant   = flag.String("variant", "map", "objective: map or mrr")
		lambda    = flag.Float64("lambda", 0.4, "list-vs-pairwise trade-off λ in [0,1]")
		dss       = flag.Bool("dss", false, "use the Double Sampling Strategy (CLAPF+)")
		dim       = flag.Int("dim", 20, "latent dimensionality")
		epochs    = flag.Int("epochs", 30, "epoch-equivalents of SGD")
		rate      = flag.Float64("rate", 0.05, "learning rate")
		reg       = flag.Float64("reg", 0.01, "L2 regularization")
		seed      = flag.Uint64("seed", 1, "random seed")
		outPath   = flag.String("out", "", "path to save the trained model (optional)")
	)
	flag.Parse()

	if err := run(*trainPath, *testPath, *variant, *lambda, *dss, *dim, *epochs, *rate, *reg, *seed, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-train:", err)
		os.Exit(1)
	}
}

func run(trainPath, testPath, variant string, lambda float64, dss bool,
	dim, epochs int, rate, reg float64, seed uint64, outPath string) error {
	if trainPath == "" {
		return fmt.Errorf("-train is required")
	}
	train, err := loadTSV(trainPath)
	if err != nil {
		return err
	}

	var v clapf.Variant
	switch variant {
	case "map":
		v = clapf.MAP
	case "mrr":
		v = clapf.MRR
	default:
		return fmt.Errorf("unknown variant %q (want map or mrr)", variant)
	}

	cfg := clapf.DefaultConfig(v, train.NumPairs())
	cfg.Lambda = lambda
	cfg.Dim = dim
	cfg.Steps = epochs * train.NumPairs()
	cfg.LearnRate = rate
	cfg.RegUser, cfg.RegItem, cfg.RegBias = reg, reg, reg
	cfg.Seed = seed
	if dss {
		cfg.Sampler.Strategy = clapf.SamplerDSS
	}

	trainer, err := clapf.NewTrainer(cfg, train)
	if err != nil {
		return err
	}
	fmt.Printf("training CLAPF-%s λ=%.2f on %s: %d users, %d items, %d pairs, %d steps\n",
		v, lambda, train.Name(), train.NumUsers(), train.NumItems(), train.NumPairs(), cfg.Steps)
	trainer.Run()

	if testPath != "" {
		test, err := loadTSV(testPath)
		if err != nil {
			return err
		}
		res := clapf.Evaluate(trainer.Model(), train, test, clapf.EvalOptions{})
		fmt.Printf("evaluated %d users:\n", res.Users)
		for _, m := range res.AtK {
			fmt.Printf("  k=%-3d Prec %.4f  Recall %.4f  F1 %.4f  1-call %.4f  NDCG %.4f\n",
				m.K, m.Prec, m.Recall, m.F1, m.OneCall, m.NDCG)
		}
		fmt.Printf("  MAP %.4f  MRR %.4f  AUC %.4f\n", res.MAP, res.MRR, res.AUC)
	}

	if outPath != "" {
		if err := clapf.SaveModelFile(outPath, trainer.Model()); err != nil {
			return err
		}
		fmt.Printf("model saved to %s\n", outPath)
	}
	return nil
}

func loadTSV(path string) (*clapf.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return clapf.ReadDatasetTSV(f)
}

// Command clapf-train trains a CLAPF model on a TSV dataset, evaluates it
// against an optional test split, and saves the learned model.
//
// Usage:
//
//	clapf-train -train train.tsv [-test test.tsv] [-variant map|mrr]
//	            [-lambda 0.4] [-dss] [-epochs 30] [-out model.clapf]
//	            [-export-f32 model.f32.clapf]
//	            [-log-every N] [-metrics-out telemetry.json]
//	            [-workers N] [-prom-out metrics.prom]
//	            [-clip-norm C] [-watchdog] [-max-rollbacks N]
//
// -workers N > 1 trains with lock-free Hogwild SGD: users are sharded
// across N goroutines, item factors are updated with element-wise atomic
// stores, and DSS refreshes, telemetry, and checkpoints run at
// epoch-style barriers. Multi-worker training is statistically
// equivalent to serial but not bit-reproducible; evaluation (also
// parallelized across workers) stays bit-identical for any N. -prom-out
// writes the final training metrics (including per-worker throughput) in
// Prometheus text format.
//
// While training, one structured telemetry line is emitted per reporting
// interval (default: one epoch-equivalent):
//
//	… level=INFO msg=telemetry step=9040 total=271200 loss=0.5817 grad_mag=0.3294 steps_per_sec=913642 elapsed=9ms
//
// loss is an EWMA of the per-step logistic loss −ln σ(R); grad_mag is the
// interval mean of the Eq. 23 gradient scalar 1−σ(R) (near zero ⇒ the
// vanishing-gradient regime DSS escapes); steps_per_sec is SGD throughput.
// -metrics-out additionally dumps the full interval history plus DSS
// sampler draw histograms as JSON for offline plotting.
//
// Dataset files use the clapf TSV format (see clapf-datagen or
// clapf.WriteDatasetTSV).
//
// Crash safety: with -checkpoint-dir set, training writes durable
// version-2 checkpoints (model + step + RNG state + hyper-parameters +
// train-data fingerprint) every -checkpoint-every steps, keeping the last
// -checkpoint-keep generations. On SIGINT/SIGTERM the current step batch
// finishes, a final checkpoint is written, and the process exits cleanly.
// -resume restarts from the newest valid generation, skipping truncated
// or corrupt files, after verifying the checkpoint belongs to the same
// dataset and hyper-parameters. Parallel checkpoints record per-worker
// RNG streams, so resuming requires the same -workers value.
//
// Training guardrails: -clip-norm C bounds the L2 norm of each update's
// data-term gradient (0 disables; clipped updates are counted in
// clapf_grad_clip_total). -watchdog arms divergence detection — per-step
// non-finite risk sentinels, sampled parameter health scans, and a
// smoothed-loss rise watchdog — and requires -checkpoint-dir: when a
// guard trips, training rolls back to the newest good checkpoint, halves
// the learning rate, and resumes, at most -max-rollbacks times before the
// run fails with a diagnostic report. Every checkpoint write is gated on
// a full parameter scan, so checkpoints are clean rollback targets by
// construction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clapf"
	"clapf/internal/guard"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/obs/trace"
	"clapf/internal/store"
)

func main() {
	var o options
	flag.StringVar(&o.trainPath, "train", "", "training dataset (TSV, required)")
	flag.StringVar(&o.testPath, "test", "", "test dataset (TSV, optional)")
	flag.StringVar(&o.variant, "variant", "map", "objective: map or mrr")
	flag.Float64Var(&o.lambda, "lambda", 0.4, "list-vs-pairwise trade-off λ in [0,1]")
	flag.BoolVar(&o.dss, "dss", false, "use the Double Sampling Strategy (CLAPF+)")
	flag.IntVar(&o.dim, "dim", 20, "latent dimensionality")
	flag.IntVar(&o.epochs, "epochs", 30, "epoch-equivalents of SGD")
	flag.Float64Var(&o.rate, "rate", 0.05, "learning rate")
	flag.Float64Var(&o.reg, "reg", 0.01, "L2 regularization")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.StringVar(&o.outPath, "out", "", "path to save the trained model (optional)")
	flag.StringVar(&o.exportF32, "export-f32", "", "additionally export a float32 serving model in mmap-able v3 format (optional)")
	flag.IntVar(&o.logEvery, "log-every", 0, "steps between telemetry lines (0 = one epoch-equivalent)")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write a JSON telemetry dump here after training (optional)")
	flag.StringVar(&o.checkpointDir, "checkpoint-dir", "", "directory for training checkpoints (optional)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 0, "steps between checkpoints (0 = one epoch-equivalent)")
	flag.IntVar(&o.checkpointKeep, "checkpoint-keep", 3, "checkpoint generations to keep (0 = all)")
	flag.BoolVar(&o.resume, "resume", false, "resume from the newest valid checkpoint in -checkpoint-dir")
	flag.IntVar(&o.workers, "workers", 1, "parallel training workers (1 = serial and bit-deterministic; >1 = lock-free Hogwild, statistically equivalent)")
	flag.StringVar(&o.promOut, "prom-out", "", "write Prometheus-format training metrics here after training (optional)")
	flag.Float64Var(&o.clipNorm, "clip-norm", 0, "L2 bound on each update's data-term gradient (0 = no clipping)")
	flag.BoolVar(&o.watchdog, "watchdog", false, "arm divergence detection with automatic checkpoint rollback (requires -checkpoint-dir)")
	flag.IntVar(&o.maxRollbacks, "max-rollbacks", 3, "automatic rollbacks before a tripped run fails")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "clapf-train:", err)
		os.Exit(1)
	}
}

// options carries every flag; run is pure over it for testability.
type options struct {
	trainPath, testPath string
	variant             string
	lambda              float64
	dss                 bool
	dim, epochs         int
	rate, reg           float64
	seed                uint64
	outPath             string
	exportF32           string
	logEvery            int
	metricsOut          string
	checkpointDir       string
	checkpointEvery     int
	checkpointKeep      int
	resume              bool
	workers             int
	promOut             string
	clipNorm            float64
	watchdog            bool
	maxRollbacks        int

	// stopCh overrides the OS signal channel in tests; nil installs a real
	// SIGINT/SIGTERM handler.
	stopCh chan os.Signal
}

// intervalRecord is one telemetry snapshot in the -metrics-out dump.
type intervalRecord struct {
	Step           int     `json:"step"`
	SmoothedLoss   float64 `json:"smoothed_loss"`
	GradMag        float64 `json:"grad_mag"`
	StepsPerSec    float64 `json:"steps_per_sec"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// workerRecord is one Hogwild worker's throughput in the -metrics-out dump.
type workerRecord struct {
	ID          int     `json:"id"`
	Steps       int     `json:"steps"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// telemetryDump is the -metrics-out payload.
type telemetryDump struct {
	Variant           string                `json:"variant"`
	Lambda            float64               `json:"lambda"`
	DSS               bool                  `json:"dss"`
	Workers           int                   `json:"workers"`
	Steps             int                   `json:"steps"`
	WallSeconds       float64               `json:"wall_seconds"`
	StepsPerSec       float64               `json:"steps_per_sec"`
	FinalSmoothedLoss float64               `json:"final_smoothed_loss"`
	Intervals         []intervalRecord      `json:"intervals"`
	WorkerStats       []workerRecord        `json:"worker_stats,omitempty"`
	PosDraws          obs.HistogramSnapshot `json:"pos_draws"`
	NegDraws          obs.HistogramSnapshot `json:"neg_draws"`
}

// sgdTrainer is the surface shared by the serial and parallel trainers;
// run, checkpointing, and the guard supervisor are all generic over it
// (it subsumes guard.Trainee).
type sgdTrainer interface {
	guard.Trainee
	SmoothedLoss() float64
	SetStatsHook(every int, fn clapf.StatsHook) error
	InstrumentSampler(pos, neg *obs.Histogram)
	SetGuard(cfg guard.Config, m *guard.Metrics) error
	SetTracer(t *trace.Tracer)
	MetaSnapshot() *store.Meta
}

func run(w io.Writer, o options) error {
	if o.trainPath == "" {
		return fmt.Errorf("-train is required")
	}
	train, err := loadTSV(o.trainPath)
	if err != nil {
		return err
	}

	var v clapf.Variant
	switch o.variant {
	case "map":
		v = clapf.MAP
	case "mrr":
		v = clapf.MRR
	default:
		return fmt.Errorf("unknown variant %q (want map or mrr)", o.variant)
	}

	cfg := clapf.DefaultConfig(v, train.NumPairs())
	cfg.Lambda = o.lambda
	cfg.Dim = o.dim
	cfg.Steps = o.epochs * train.NumPairs()
	cfg.LearnRate = o.rate
	cfg.RegUser, cfg.RegItem, cfg.RegBias = o.reg, o.reg, o.reg
	cfg.Seed = o.seed
	cfg.ClipNorm = o.clipNorm
	if o.dss {
		cfg.Sampler.Strategy = clapf.SamplerDSS
	}

	if o.workers < 1 {
		return fmt.Errorf("-workers %d: want >= 1", o.workers)
	}
	if o.watchdog && o.checkpointDir == "" {
		return fmt.Errorf("-watchdog needs a rollback target: pass -checkpoint-dir")
	}
	if o.maxRollbacks < 0 {
		return fmt.Errorf("-max-rollbacks %d: want >= 0", o.maxRollbacks)
	}
	var trainer sgdTrainer
	var parallel *clapf.ParallelTrainer
	if o.workers > 1 {
		pt, err := clapf.NewParallelTrainer(cfg, train, o.workers)
		if err != nil {
			return err
		}
		trainer, parallel = pt, pt
	} else {
		tr, err := clapf.NewTrainer(cfg, train)
		if err != nil {
			return err
		}
		trainer = tr
	}

	// Prometheus export: register before training so the per-worker
	// counters accumulate at every barrier.
	registry := obs.NewRegistry()
	if parallel != nil {
		parallel.RegisterMetrics(registry)
	} else {
		registry.NewGaugeFunc("clapf_train_workers",
			"Hogwild training workers in the current run.",
			func() float64 { return 1 })
	}
	// Per-stage latency attribution: train.* stage durations land in
	// clapf_stage_duration_seconds on the same registry (-prom-out picks
	// them up). SampleRate 0 keeps the flight recorder quiet — there is no
	// HTTP surface here; errored batches (guard trips) are still retained.
	tracer := trace.New(registry, "clapf_", trace.Config{SampleRate: 0})
	tracer.SetLogger(obs.NewTextLogger(w, slog.LevelWarn))
	trainer.SetTracer(tracer)

	// Guardrails: a guard is installed whenever clipping or the watchdog is
	// on (clipping alone still wants its counter flushed); the supervisor
	// only exists when the watchdog can roll back to checkpoints.
	var sup *guard.Supervisor
	if o.watchdog || o.clipNorm > 0 {
		gm := guard.NewMetrics(registry)
		// The library default cadence (16384 steps) is tuned for
		// million-step runs; on a short run its 2×CheckEvery warmup would
		// suppress loss-rise detection entirely. The total step count is
		// known here, so clamp the cadence to 1/16 of the run — long runs
		// keep the cheap default, short runs still get several checks.
		gcfg := guard.Config{Watchdog: o.watchdog}
		if clamp := cfg.Steps / 16; clamp > 0 && clamp < guard.DefaultCheckEvery {
			gcfg.CheckEvery = clamp
		}
		if err := trainer.SetGuard(gcfg, gm); err != nil {
			return err
		}
		if o.watchdog {
			sup = &guard.Supervisor{
				Dir:          o.checkpointDir,
				MaxRollbacks: o.maxRollbacks,
				Metrics:      gm,
				Log:          obs.NewTextLogger(w, slog.LevelInfo),
			}
		}
	}

	// Telemetry: one structured line per interval, accumulated for the
	// optional JSON dump.
	logger := obs.NewTextLogger(w, slog.LevelInfo)
	every := o.logEvery
	if every <= 0 {
		every = train.NumPairs() // one epoch-equivalent
	}
	var intervals []intervalRecord
	err = trainer.SetStatsHook(every, func(st clapf.TrainStats) {
		logger.Info("telemetry",
			"step", st.Step,
			"total", st.TotalSteps,
			"loss", fmt.Sprintf("%.4f", st.SmoothedLoss),
			"grad_mag", fmt.Sprintf("%.4f", st.GradMag),
			"steps_per_sec", int(st.StepsPerSec),
			"elapsed", st.Elapsed.Round(time.Millisecond).String())
		intervals = append(intervals, intervalRecord{
			Step:           st.Step,
			SmoothedLoss:   st.SmoothedLoss,
			GradMag:        st.GradMag,
			StepsPerSec:    st.StepsPerSec,
			ElapsedSeconds: st.Elapsed.Seconds(),
		})
	})
	if err != nil {
		return err
	}
	posDraws := obs.NewHistogram(obs.RankBuckets(train.NumItems()))
	negDraws := obs.NewHistogram(obs.RankBuckets(train.NumItems()))
	trainer.InstrumentSampler(posDraws, negDraws)

	if o.resume {
		if o.checkpointDir == "" {
			return fmt.Errorf("-resume requires -checkpoint-dir")
		}
		if err := resumeFromCheckpoint(w, trainer, train, o); err != nil {
			return err
		}
	}

	stop := o.stopCh
	if stop == nil {
		stop = make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(stop)
	}

	fmt.Fprintf(w, "training CLAPF-%s λ=%.2f on %s: %d users, %d items, %d pairs, %d steps, %d worker(s)\n",
		v, o.lambda, train.Name(), train.NumUsers(), train.NumItems(), train.NumPairs(), cfg.Steps, o.workers)
	start := time.Now()
	interrupted, err := trainLoop(w, trainer, tracer, train, o, cfg, stop, sup)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	if sup != nil {
		if rb := sup.Report().Rollbacks; len(rb) > 0 {
			fmt.Fprintf(w, "guard: recovered from %d rollback(s); final learning rate %g\n",
				len(rb), rb[len(rb)-1].LearnRate)
		}
	}

	sps := 0.0
	if secs := wall.Seconds(); secs > 0 {
		sps = float64(trainer.StepsDone()) / secs
	}
	fmt.Fprintf(w, "trained %d steps in %s (%.0f steps/s), final smoothed loss %.4f\n",
		trainer.StepsDone(), wall.Round(time.Millisecond), sps, trainer.SmoothedLoss())
	if o.dss && negDraws.Count() > 0 {
		fmt.Fprintf(w, "DSS draws: mean positive rank %.1f, mean negative rank %.1f (of %d items)\n",
			posDraws.Mean(), negDraws.Mean(), train.NumItems())
	}

	if parallel != nil {
		for _, ws := range parallel.WorkerStats() {
			fmt.Fprintf(w, "  worker %d: %d steps, %.0f steps/s\n", ws.ID, ws.Steps, ws.StepsPerSec)
		}
	}

	if o.promOut != "" {
		var sb strings.Builder
		if err := registry.WritePrometheus(&sb); err != nil {
			return fmt.Errorf("rendering metrics: %w", err)
		}
		if err := os.WriteFile(o.promOut, []byte(sb.String()), 0o644); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		fmt.Fprintf(w, "metrics written to %s\n", o.promOut)
	}

	if o.metricsOut != "" {
		var workerStats []workerRecord
		if parallel != nil {
			for _, ws := range parallel.WorkerStats() {
				workerStats = append(workerStats, workerRecord{ID: ws.ID, Steps: ws.Steps, StepsPerSec: ws.StepsPerSec})
			}
		}
		dump := telemetryDump{
			Variant:           v.String(),
			Lambda:            o.lambda,
			DSS:               o.dss,
			Workers:           o.workers,
			WorkerStats:       workerStats,
			Steps:             trainer.StepsDone(),
			WallSeconds:       wall.Seconds(),
			StepsPerSec:       sps,
			FinalSmoothedLoss: trainer.SmoothedLoss(),
			Intervals:         intervals,
			PosDraws:          posDraws.Snapshot(),
			NegDraws:          negDraws.Snapshot(),
		}
		buf, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding telemetry: %w", err)
		}
		if err := os.WriteFile(o.metricsOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing telemetry: %w", err)
		}
		fmt.Fprintf(w, "telemetry written to %s\n", o.metricsOut)
	}

	if interrupted {
		// The checkpoint (when enabled) is the durable artifact of an
		// interrupted run; evaluating or publishing a half-trained model
		// would be misleading, so both are skipped.
		if o.checkpointDir != "" {
			fmt.Fprintf(w, "interrupted at step %d; resume with -resume -checkpoint-dir %s\n",
				trainer.StepsDone(), o.checkpointDir)
		} else {
			fmt.Fprintf(w, "interrupted at step %d (no -checkpoint-dir; progress not saved)\n",
				trainer.StepsDone())
		}
		return nil
	}

	if o.testPath != "" {
		test, err := loadTSV(o.testPath)
		if err != nil {
			return err
		}
		res := clapf.Evaluate(trainer.Model(), train, test, clapf.EvalOptions{Workers: o.workers})
		fmt.Fprintf(w, "evaluated %d users in %s:\n", res.Users, res.Timing)
		for _, m := range res.AtK {
			fmt.Fprintf(w, "  k=%-3d Prec %.4f  Recall %.4f  F1 %.4f  1-call %.4f  NDCG %.4f\n",
				m.K, m.Prec, m.Recall, m.F1, m.OneCall, m.NDCG)
		}
		fmt.Fprintf(w, "  MAP %.4f  MRR %.4f  AUC %.4f\n", res.MAP, res.MRR, res.AUC)
	}

	if o.outPath != "" {
		if err := clapf.SaveModelFile(o.outPath, trainer.Model()); err != nil {
			return err
		}
		fmt.Fprintf(w, "model saved to %s\n", o.outPath)
	}
	if o.exportF32 != "" {
		f := mf.QuantizeF32(trainer.Model())
		if err := store.SaveF32File(o.exportF32, f, nil); err != nil {
			return err
		}
		fmt.Fprintf(w, "float32 model exported to %s (%d parameter bytes)\n",
			o.exportF32, f.ParamBytes())
	}
	return nil
}

// trainLoop runs SGD in signal-responsive batches. With -checkpoint-dir
// set, a durable checkpoint is written every checkpoint interval and at
// the end of training. On a stop signal the current batch finishes, a
// final checkpoint is written, and the loop reports interrupted=true.
// With a guard supervisor, trips are recovered at batch boundaries and
// every checkpoint write is gated on a full parameter scan.
func trainLoop(w io.Writer, trainer sgdTrainer, tracer *trace.Tracer, train *clapf.Dataset, o options, cfg clapf.Config, stop <-chan os.Signal, sup *guard.Supervisor) (interrupted bool, err error) {
	ckptEvery := o.checkpointEvery
	if ckptEvery <= 0 {
		ckptEvery = train.NumPairs() // one epoch-equivalent
	}
	// Batches bound how long a stop signal waits for the loop; checkpoint
	// intervals above the cap simply span several batches.
	batch := ckptEvery
	const maxBatch = 16384
	if batch > maxBatch {
		batch = maxBatch
	}
	lastCkpt := trainer.StepsDone()
	// writeGated persists a generation, refusing (and recovering from) a
	// poisoned model when supervised. report=true echoes the path.
	writeGated := func(report bool) error {
		if sup != nil {
			ok, gateErr := sup.GateCheckpoint(trainer)
			if gateErr != nil {
				return gateErr
			}
			if !ok {
				fmt.Fprintf(w, "guard: poisoned parameters caught at the checkpoint gate; rolled back to step %d\n",
					trainer.StepsDone())
				lastCkpt = trainer.StepsDone()
				return nil
			}
		}
		ckptStart := time.Now()
		path, ckptErr := writeCheckpoint(trainer, train, o, cfg)
		tracer.ObserveStage("train.checkpoint", time.Since(ckptStart))
		if ckptErr != nil {
			return ckptErr
		}
		lastCkpt = trainer.StepsDone()
		if report {
			fmt.Fprintf(w, "checkpoint written to %s\n", path)
		}
		return nil
	}
	// An armed watchdog needs a rollback target before the first trip can
	// land; resumed runs already have one, fresh runs get one up front.
	if sup != nil && lastCkpt == 0 {
		if err := writeGated(false); err != nil {
			return false, err
		}
	}
	for trainer.StepsDone() < cfg.Steps {
		n := cfg.Steps - trainer.StepsDone()
		if n > batch {
			n = batch
		}
		trainer.RunSteps(n)
		select {
		case sig := <-stop:
			interrupted = true
			fmt.Fprintf(w, "caught %s at step %d\n", sig, trainer.StepsDone())
		default:
		}
		if sup != nil {
			recovered, err := sup.HandleTrip(trainer)
			if err != nil {
				return interrupted, err
			}
			if recovered {
				rb := sup.Report().Rollbacks
				ev := rb[len(rb)-1]
				fmt.Fprintf(w, "guard: %s; rolled back to step %d, learning rate now %g\n",
					ev.Trip.String(), ev.CheckpointStep, ev.LearnRate)
				lastCkpt = trainer.StepsDone()
				if !interrupted {
					continue
				}
			}
		}
		done := trainer.StepsDone() >= cfg.Steps
		if o.checkpointDir != "" && (interrupted || done || trainer.StepsDone()-lastCkpt >= ckptEvery) {
			if err := writeGated(interrupted || done); err != nil {
				return interrupted, err
			}
		}
		if interrupted || done {
			return interrupted, nil
		}
	}
	return false, nil
}

// hyperMap renders the run's hyper-parameters for the checkpoint trailer;
// a resume refuses to continue under different values.
func hyperMap(o options) map[string]string {
	return map[string]string{
		"variant": o.variant,
		"lambda":  fmt.Sprintf("%g", o.lambda),
		"dss":     fmt.Sprintf("%t", o.dss),
		"dim":     fmt.Sprintf("%d", o.dim),
		"rate":    fmt.Sprintf("%g", o.rate),
		"reg":     fmt.Sprintf("%g", o.reg),
		"seed":    fmt.Sprintf("%d", o.seed),
		"workers": fmt.Sprintf("%d", o.workers),
		// Clipping alters the trajectory, so a resume must match it; old
		// checkpoints without the key resume freely.
		"clip_norm": fmt.Sprintf("%g", o.clipNorm),
	}
}

// writeCheckpoint snapshots the trainer into a durable v2 checkpoint
// generation, pruning old generations beyond -checkpoint-keep. Both
// trainers are quiescent between RunSteps calls, so snapshotting here is
// always safe — parallel workers included.
func writeCheckpoint(trainer sgdTrainer, train *clapf.Dataset, o options, cfg clapf.Config) (string, error) {
	meta := trainer.MetaSnapshot()
	meta.Epoch = meta.Step / train.NumPairs()
	meta.TotalSteps = cfg.Steps
	meta.DataFingerprint = train.Fingerprint()
	meta.Hyper = hyperMap(o)
	return store.WriteCheckpoint(o.checkpointDir, trainer.Model(), meta, o.checkpointKeep)
}

// resumeFromCheckpoint restores the trainer from the newest valid
// generation in -checkpoint-dir, refusing checkpoints from a different
// dataset or hyper-parameter setting.
func resumeFromCheckpoint(w io.Writer, trainer sgdTrainer, train *clapf.Dataset, o options) error {
	model, meta, path, skipped, err := store.LatestCheckpoint(o.checkpointDir)
	for _, s := range skipped {
		fmt.Fprintf(w, "skipping invalid checkpoint %s\n", s)
	}
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if meta.DataFingerprint != 0 && meta.DataFingerprint != train.Fingerprint() {
		return fmt.Errorf("resume: checkpoint %s was trained on different data (fingerprint %016x, dataset has %016x)",
			path, meta.DataFingerprint, train.Fingerprint())
	}
	if err := hyperCompatible(meta.Hyper, hyperMap(o)); err != nil {
		return fmt.Errorf("resume: checkpoint %s: %w", path, err)
	}
	// Topology mismatches get actionable guidance before the restore would
	// reject them with the same diagnosis.
	if n := len(meta.Workers); n > 0 && o.workers == 1 {
		return fmt.Errorf("resume: checkpoint %s is from a %d-worker parallel run; pass -workers %d", path, n, n)
	} else if n == 0 && o.workers > 1 {
		return fmt.Errorf("resume: checkpoint %s is from a serial run; pass -workers 1", path)
	}
	if err := trainer.RestoreFromMeta(model, meta); err != nil {
		return fmt.Errorf("resume: checkpoint %s: %w", path, err)
	}
	fmt.Fprintf(w, "resumed from %s at step %d (epoch %d)\n", path, meta.Step, meta.Epoch)
	return nil
}

// hyperCompatible reports the first hyper-parameter present in both maps
// whose values disagree.
func hyperCompatible(ckpt, now map[string]string) error {
	for k, want := range now {
		if got, ok := ckpt[k]; ok && got != want {
			return fmt.Errorf("hyper-parameter %s = %s in checkpoint, %s requested", k, got, want)
		}
	}
	return nil
}

func loadTSV(path string) (*clapf.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return clapf.ReadDatasetTSV(f)
}
